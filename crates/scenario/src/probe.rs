//! Declarative measurement: a `ProbeSet` names what a scenario records.
//!
//! Two probe families cover the paper's evaluation:
//!
//! - **end probes** run once after the simulation and append metrics in
//!   declaration order — effective-bandwidth leak ratios, filter-table
//!   peaks, router counter sums, or any bespoke extraction;
//! - **sampled probes** run every `bin` of simulated time and accumulate
//!   a named series (the figure-style traces); summarizers then reduce
//!   the series store to scalar metrics (window means, first-crossing
//!   times), and series marked for emission ride into the JSON as
//!   `_series_*` float lists.
//!
//! Metric order in the final [`aitf_engine::Outcome`] is: end probes (in
//! order), then summarizers (in order), then `_series_time_s` plus every
//! emitted series (in order) — so a scenario's table and JSON columns are
//! exactly the probe declaration order.

use aitf_core::HostId;
use aitf_engine::Params;
use aitf_netsim::SimDuration;

use crate::topology::{BuiltWorld, Role, Side};

/// An end-of-run metric extractor. May append several related metrics.
pub type EndProbe = Box<dyn FnOnce(&BuiltWorld, &mut Params)>;

/// A per-bin series sampler.
pub struct SampledProbe {
    /// Metric name the series is emitted under (conventionally
    /// `_series_*`, which keeps it JSON-only).
    pub name: &'static str,
    /// Whether the series itself lands in the metrics (summarizers can
    /// read it either way).
    pub emit: bool,
    pub(crate) sample: Box<dyn FnMut(&BuiltWorld) -> f64>,
}

/// Reduces sampled series to scalar metrics after the run.
pub type Summarizer = Box<dyn FnOnce(&SeriesStore, &mut Params)>;

/// The sampled series of one run: a shared time axis plus one value
/// vector per sampled probe.
#[derive(Debug, Default)]
pub struct SeriesStore {
    /// Simulated seconds at the end of each bin.
    pub time_s: Vec<f64>,
    pub(crate) series: Vec<(&'static str, Vec<f64>)>,
}

impl SeriesStore {
    /// The series sampled under `name`.
    ///
    /// # Panics
    ///
    /// Panics if no sampled probe has that name.
    pub fn series(&self, name: &str) -> &[f64] {
        self.series
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or_else(|| panic!("no sampled series named {name:?}"))
    }

    /// Mean of a series over bins whose time is in `[from, to)` seconds
    /// (0 when the window is empty).
    pub fn window_mean(&self, name: &str, from: f64, to: f64) -> f64 {
        let values = self.series(name);
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&t, &v) in self.time_s.iter().zip(values) {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    }

    /// Simulated time of the first bin where the series satisfies `pred`,
    /// if any.
    pub fn first_time(&self, name: &str, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
        let values = self.series(name);
        self.time_s
            .iter()
            .zip(values)
            .find(|&(_, &v)| pred(v))
            .map(|(&t, _)| t)
    }
}

/// The measurement plan of a scenario.
#[derive(Default)]
pub struct ProbeSet {
    pub(crate) end: Vec<EndProbe>,
    pub(crate) sample_bin: Option<SimDuration>,
    pub(crate) sampled: Vec<SampledProbe>,
    pub(crate) summarizers: Vec<Summarizer>,
}

impl ProbeSet {
    /// An empty probe set (the scenario still reports simulator events).
    pub fn new() -> Self {
        ProbeSet::default()
    }

    /// Appends a bespoke end probe.
    pub fn end(mut self, f: impl FnOnce(&BuiltWorld, &mut Params) + 'static) -> Self {
        self.end.push(Box::new(f));
        self
    }

    /// Standard probe: the victim's attack leak ratio — attack bytes
    /// *received* over attack bytes *offered* by the [`Role::Attacker`]
    /// hosts; the measured counterpart of the paper's effective-bandwidth
    /// reduction factor `r`.
    pub fn leak_ratio(self, name: &'static str) -> Self {
        self.end(move |w, m| m.set(name, leak_ratio(w)))
    }

    /// Standard probe: fraction of the legitimate bytes offered by
    /// [`Role::Legit`] hosts that reached the victim.
    pub fn legit_delivery(self, name: &'static str) -> Self {
        self.end(move |w, m| {
            let offered: u64 = w
                .hosts_with(Role::Legit)
                .iter()
                .map(|&h| w.world.host(h).counters().tx_bytes)
                .sum();
            let received = w.world.host(w.victim()).counters().rx_legit_bytes;
            let frac = if offered == 0 {
                0.0
            } else {
                received as f64 / offered as f64
            };
            m.set(name, frac);
        })
    }

    /// Standard probe: peak wire-speed filter occupancy at a named
    /// network's border router.
    pub fn peak_filters(self, name: &'static str, net: &'static str) -> Self {
        self.end(move |w, m| {
            let peak = w.world.router(w.net(net)).filters().stats().peak_occupancy;
            m.set(name, peak);
        })
    }

    /// Standard probe: peak DRAM shadow occupancy at a named network's
    /// border router.
    pub fn peak_shadows(self, name: &'static str, net: &'static str) -> Self {
        self.end(move |w, m| {
            let peak = w.world.router(w.net(net)).shadow().stats().peak_occupancy;
            m.set(name, peak);
        })
    }

    /// Standard probe: long-term filters installed, summed over a side's
    /// border routers.
    pub fn filters_installed_on(self, name: &'static str, side: Side) -> Self {
        self.end(move |w, m| {
            let total: u64 = w
                .nets_on(side)
                .iter()
                .map(|&n| w.world.router(n).counters().filters_installed)
                .sum();
            m.set(name, total);
        })
    }

    /// Standard probe: filtering requests received, summed over a side's
    /// border routers (the §III-C per-provider message load).
    pub fn requests_received_on(self, name: &'static str, side: Side) -> Self {
        self.end(move |w, m| {
            let total: u64 = w
                .nets_on(side)
                .iter()
                .map(|&n| w.world.router(n).counters().requests_received)
                .sum();
            m.set(name, total);
        })
    }

    /// Enables sampling: the scenario runs in `bin`-sized steps and every
    /// sampled probe records one value per bin.
    pub fn bin(mut self, bin: SimDuration) -> Self {
        self.sample_bin = Some(bin);
        self
    }

    /// Appends a sampled series probe; `emit` controls whether the series
    /// lands in the metrics (as an `_series_*`-style float list).
    pub fn sampled(
        mut self,
        name: &'static str,
        emit: bool,
        f: impl FnMut(&BuiltWorld) -> f64 + 'static,
    ) -> Self {
        self.sampled.push(SampledProbe {
            name,
            emit,
            sample: Box::new(f),
        });
        self
    }

    /// Standard sampled probe: live filter count at a named network's
    /// border router.
    pub fn sampled_filter_occupancy(
        self,
        name: &'static str,
        net: &'static str,
        emit: bool,
    ) -> Self {
        self.sampled(name, emit, move |w| {
            w.world.router(w.net(net)).filters().len() as f64
        })
    }

    /// Standard sampled probe: per-bin delivered bandwidth at the victim
    /// in Mbit/s, from a per-class byte counter (stateful delta). The
    /// rate divides by the simulated time since the previous sample, so
    /// it stays correct for whatever [`ProbeSet::bin`] is in force.
    pub fn sampled_victim_mbps(
        self,
        name: &'static str,
        emit: bool,
        counter: impl Fn(&BuiltWorld) -> u64 + 'static,
    ) -> Self {
        let mut last_bytes = 0u64;
        let mut last_t = 0.0f64;
        self.sampled(name, emit, move |w| {
            let now_bytes = counter(w);
            let now_t = w.world.sim.now().as_secs_f64();
            let bits = (now_bytes - last_bytes) as f64 * 8.0;
            let secs = now_t - last_t;
            last_bytes = now_bytes;
            last_t = now_t;
            if secs > 0.0 {
                bits / secs / 1e6
            } else {
                0.0
            }
        })
    }

    /// Appends a summarizer over the sampled series.
    pub fn summarize(mut self, f: impl FnOnce(&SeriesStore, &mut Params) + 'static) -> Self {
        self.summarizers.push(Box::new(f));
        self
    }

    /// Standard summarizer: time from `after` until the first sample at
    /// or past `after` where the named series is positive — the
    /// scenario's time-to-block when pointed at a filter-occupancy
    /// series. Samples before `after` are ignored entirely (a filter
    /// already live when the measured attack starts still counts from
    /// `after`). Emits `-1` when the series never crosses.
    pub fn time_to_block(self, name: &'static str, series: &'static str, after: f64) -> Self {
        self.summarize(move |s, m| {
            let t = s
                .time_s
                .iter()
                .zip(s.series(series))
                .find(|&(&t, &v)| t >= after && v > 0.0)
                .map_or(-1.0, |(&t, _)| t - after);
            m.set(name, t);
        })
    }
}

/// The victim's attack-leak ratio (see [`ProbeSet::leak_ratio`]).
pub fn leak_ratio(w: &BuiltWorld) -> f64 {
    let offered: u64 = w
        .hosts_with(Role::Attacker)
        .iter()
        .map(|&h| w.world.host(h).counters().tx_bytes)
        .sum();
    if offered == 0 {
        return 0.0;
    }
    w.world.host(w.victim()).counters().rx_attack_bytes as f64 / offered as f64
}

/// Offered bytes so far by one host — a building block for bespoke
/// ratio probes.
pub fn offered_bytes(w: &BuiltWorld, host: HostId) -> u64 {
    w.world.host(host).counters().tx_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_store_window_mean_and_first_time() {
        let store = SeriesStore {
            time_s: vec![0.5, 1.0, 1.5, 2.0],
            series: vec![("x", vec![0.0, 2.0, 4.0, 0.0])],
        };
        assert_eq!(store.window_mean("x", 1.0, 2.0), 3.0);
        assert_eq!(store.window_mean("x", 5.0, 6.0), 0.0);
        assert_eq!(store.first_time("x", |v| v > 0.0), Some(1.0));
        assert_eq!(store.first_time("x", |v| v > 10.0), None);
    }

    #[test]
    #[should_panic(expected = "no sampled series")]
    fn missing_series_panics() {
        let store = SeriesStore::default();
        let _ = store.series("nope");
    }

    #[test]
    fn time_to_block_counts_from_after_even_if_already_positive() {
        // A filter live since t=1.0 and an attack measured from t=1.5:
        // the block time is the first sample at/past `after`, not "never".
        let store = SeriesStore {
            time_s: vec![1.0, 2.0, 3.0],
            series: vec![("f", vec![1.0, 1.0, 1.0]), ("g", vec![0.0, 0.0, 0.0])],
        };
        let probes = ProbeSet::new()
            .time_to_block("blocked_at", "f", 1.5)
            .time_to_block("never", "g", 1.5);
        let mut m = Params::new();
        for summarize in probes.summarizers {
            summarize(&store, &mut m);
        }
        assert_eq!(m.f64("blocked_at"), 0.5);
        assert_eq!(m.f64("never"), -1.0);
    }
}
