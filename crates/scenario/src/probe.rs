//! Declarative measurement: a `ProbeSet` names what a scenario records.
//!
//! Two probe families cover the paper's evaluation:
//!
//! - **end probes** run once after the simulation and append metrics in
//!   declaration order — effective-bandwidth leak ratios, filter-table
//!   peaks, router counter sums, or any bespoke extraction;
//! - **sampled probes** run every `bin` of simulated time and accumulate
//!   a named series (the figure-style traces); summarizers then reduce
//!   the series store to scalar metrics (window means, first-crossing
//!   times), and series marked for emission ride into the JSON as
//!   `_series_*` float lists.
//!
//! Metric order in the final [`aitf_engine::Outcome`] is: end probes (in
//! order), then summarizers (in order), then `_series_time_s` plus every
//! emitted series (in order) — so a scenario's table and JSON columns are
//! exactly the probe declaration order.

use aitf_core::{HostId, RxTap};
use aitf_engine::Params;
use aitf_netsim::SimDuration;
use aitf_packet::{Addr, TrafficClass};

use crate::stream::{CountMinSketch, Reservoir, TopK};
use crate::topology::{BuiltWorld, Role, Side};

/// A hook that runs once after the world is built, before the first
/// simulated event — the place to install streaming taps on hosts.
pub type SetupProbe = Box<dyn FnOnce(&mut BuiltWorld)>;

/// An end-of-run metric extractor. May append several related metrics.
pub type EndProbe = Box<dyn FnOnce(&BuiltWorld, &mut Params)>;

/// A per-bin series sampler.
pub struct SampledProbe {
    /// Metric name the series is emitted under (conventionally
    /// `_series_*`, which keeps it JSON-only).
    pub name: &'static str,
    /// Whether the series itself lands in the metrics (summarizers can
    /// read it either way).
    pub emit: bool,
    pub(crate) sample: Box<dyn FnMut(&BuiltWorld) -> f64>,
}

/// Reduces sampled series to scalar metrics after the run.
pub type Summarizer = Box<dyn FnOnce(&SeriesStore, &mut Params)>;

/// The sampled series of one run: a shared time axis plus one value
/// vector per sampled probe.
#[derive(Debug, Default)]
pub struct SeriesStore {
    /// Simulated seconds at the end of each bin.
    pub time_s: Vec<f64>,
    pub(crate) series: Vec<(&'static str, Vec<f64>)>,
}

impl SeriesStore {
    /// The series sampled under `name`.
    ///
    /// # Panics
    ///
    /// Panics if no sampled probe has that name.
    pub fn series(&self, name: &str) -> &[f64] {
        self.series
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or_else(|| panic!("no sampled series named {name:?}"))
    }

    /// Mean of a series over bins whose time is in `[from, to)` seconds.
    ///
    /// Returns `f64::NAN` when the window contains no samples — an empty
    /// window is "no data", not "zero", and a silent `0.0` once read as a
    /// perfectly-quelled attack in a window that was never sampled.
    /// Metric emitters follow the [`ProbeSet::time_to_block`] convention
    /// and map the NaN to `-1` before recording.
    pub fn window_mean(&self, name: &str, from: f64, to: f64) -> f64 {
        let values = self.series(name);
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&t, &v) in self.time_s.iter().zip(values) {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Simulated time of the first bin where the series satisfies `pred`,
    /// if any.
    pub fn first_time(&self, name: &str, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
        let values = self.series(name);
        self.time_s
            .iter()
            .zip(values)
            .find(|&(_, &v)| pred(v))
            .map(|(&t, _)| t)
    }
}

/// Parameters of the constant-memory victim stream probe
/// ([`ProbeSet::streaming_victim`]). The defaults bound the probe to a
/// few hundred KiB regardless of how many sources hit the victim.
#[derive(Debug, Clone, Copy)]
pub struct StreamProbeConfig {
    /// Count-min sketch counters per row (rounded up to a power of two);
    /// the estimate error bound is `≈ e/width · packets`.
    pub sketch_width: usize,
    /// Count-min sketch rows (independent hash functions).
    pub sketch_depth: usize,
    /// Heavy-hitter sources tracked and emitted.
    pub top_k: usize,
    /// Reservoir capacity for the packet-size distribution.
    pub reservoir: usize,
    /// Seed for the sketch hash families and the reservoir sequence.
    pub seed: u64,
}

impl Default for StreamProbeConfig {
    fn default() -> Self {
        StreamProbeConfig {
            sketch_width: 2048,
            sketch_depth: 4,
            top_k: 16,
            reservoir: 512,
            seed: 0,
        }
    }
}

/// The streaming aggregator [`ProbeSet::streaming_victim`] hangs off the
/// victim host: O(1) per delivered packet, O(config) memory — it never
/// materializes per-source state no matter how many sources exist.
///
/// Both sketches share one hash layout (same width/depth/seed), so the
/// attack-class estimate for a key can never exceed its all-traffic
/// estimate: per-slot, the attack rows see a subset of the adds.
pub struct VictimStreamTap {
    pkts: CountMinSketch,
    attack_pkts: CountMinSketch,
    top: TopK,
    sizes: Reservoir,
}

impl VictimStreamTap {
    /// Builds the aggregator for `cfg`.
    pub fn new(cfg: StreamProbeConfig) -> Self {
        VictimStreamTap {
            pkts: CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth, cfg.seed),
            attack_pkts: CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth, cfg.seed),
            top: TopK::new(cfg.top_k),
            sizes: Reservoir::new(cfg.reservoir, cfg.seed),
        }
    }

    /// Heavy-hitter sources, heaviest first: `(raw address, estimated
    /// packets)`.
    pub fn heavy_hitters(&self) -> Vec<(u64, u64)> {
        self.top.ranked()
    }

    /// Estimated attack-class packets from a (raw-address) key.
    pub fn attack_estimate(&self, key: u64) -> u64 {
        self.attack_pkts.estimate(key)
    }

    /// Exact total of tapped data packets.
    pub fn total_pkts(&self) -> u64 {
        self.pkts.total()
    }

    /// Exact total of tapped attack-class packets.
    pub fn total_attack_pkts(&self) -> u64 {
        self.attack_pkts.total()
    }

    /// The packet-size sample (quantiles, mean).
    pub fn sizes(&self) -> &Reservoir {
        &self.sizes
    }

    /// Bytes held by every streaming structure — constant for a fixed
    /// config, which is what the CI memory gate pins.
    pub fn footprint_bytes(&self) -> usize {
        self.pkts.footprint_bytes()
            + self.attack_pkts.footprint_bytes()
            + self.top.footprint_bytes()
            + self.sizes.footprint_bytes()
    }
}

impl RxTap for VictimStreamTap {
    #[inline]
    fn on_rx(&mut self, src: Addr, class: TrafficClass, size_bytes: u32) {
        let key = src.raw() as u64;
        self.pkts.add(key, 1);
        if class == TrafficClass::Attack {
            self.attack_pkts.add(key, 1);
        }
        let est = self.pkts.estimate(key);
        self.top.offer(key, est);
        self.sizes.offer(size_bytes as f64);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The measurement plan of a scenario.
#[derive(Default)]
pub struct ProbeSet {
    pub(crate) setup: Vec<SetupProbe>,
    pub(crate) end: Vec<EndProbe>,
    pub(crate) sample_bin: Option<SimDuration>,
    pub(crate) sampled: Vec<SampledProbe>,
    pub(crate) summarizers: Vec<Summarizer>,
}

impl ProbeSet {
    /// An empty probe set (the scenario still reports simulator events).
    pub fn new() -> Self {
        ProbeSet::default()
    }

    /// Appends a setup hook, run by [`crate::Scenario::run`] after the
    /// world is built and the workload installed, before any simulated
    /// event — including churn scheduled at `t = 0`. Experiments driving
    /// [`crate::Scenario::build`] by hand must apply their own hooks.
    pub fn setup(mut self, f: impl FnOnce(&mut BuiltWorld) + 'static) -> Self {
        self.setup.push(Box::new(f));
        self
    }

    /// Appends a bespoke end probe.
    pub fn end(mut self, f: impl FnOnce(&BuiltWorld, &mut Params) + 'static) -> Self {
        self.end.push(Box::new(f));
        self
    }

    /// Standard streaming probe: installs a [`VictimStreamTap`] on the
    /// victim host at setup and emits its aggregates at end of run —
    /// O(1) work per delivered packet and O(`cfg`) memory however large
    /// the world or the attack. Metrics, in order:
    ///
    /// - `hh_srcs` / `hh_pkts` — heavy-hitter raw source addresses and
    ///   their estimated packet counts, heaviest first (u64 lists);
    /// - `hh_attack_pkts` — the attack-class estimate per heavy hitter,
    ///   the flash-crowd-vs-zombie discrimination signal (u64 list);
    /// - `hh_attack_frac` — attack share of heavy-hitter traffic
    ///   (−1 when the victim received nothing);
    /// - `rx_size_p50` / `rx_size_p95` — delivered-packet size quantiles
    ///   from the reservoir (−1 when empty);
    /// - `probe_bytes` — bytes held by the streaming structures, the
    ///   metric the CI memory gate pins flat across world sizes.
    ///
    /// # Panics
    ///
    /// The setup hook panics if the topology declares no victim host.
    pub fn streaming_victim(self, cfg: StreamProbeConfig) -> Self {
        self.setup(move |w| {
            let victim = w.victim();
            w.world
                .host_mut(victim)
                .set_rx_tap(Box::new(VictimStreamTap::new(cfg)));
        })
        .end(|w, m| {
            let tap = w
                .world
                .host(w.victim())
                .rx_tap()
                .and_then(|t| t.as_any().downcast_ref::<VictimStreamTap>())
                .expect("streaming_victim installed its tap at setup");
            let ranked = tap.heavy_hitters();
            m.set(
                "hh_srcs",
                ranked.iter().map(|&(k, _)| k).collect::<Vec<u64>>(),
            );
            m.set(
                "hh_pkts",
                ranked.iter().map(|&(_, c)| c).collect::<Vec<u64>>(),
            );
            let attack: Vec<u64> = ranked
                .iter()
                .map(|&(k, _)| tap.attack_estimate(k))
                .collect();
            let hh_total: u64 = ranked.iter().map(|&(_, c)| c).sum();
            let hh_attack: u64 = attack.iter().sum();
            m.set("hh_attack_pkts", attack);
            m.set(
                "hh_attack_frac",
                if hh_total == 0 {
                    -1.0
                } else {
                    hh_attack as f64 / hh_total as f64
                },
            );
            let quantile = |q| {
                let v = tap.sizes().quantile(q);
                if v.is_nan() {
                    -1.0
                } else {
                    v
                }
            };
            m.set("rx_size_p50", quantile(0.5));
            m.set("rx_size_p95", quantile(0.95));
            m.set("probe_bytes", tap.footprint_bytes() as u64);
        })
    }

    /// Standard probe: the victim's attack leak ratio — attack bytes
    /// *received* over attack bytes *offered* by the [`Role::Attacker`]
    /// hosts; the measured counterpart of the paper's effective-bandwidth
    /// reduction factor `r`.
    pub fn leak_ratio(self, name: &'static str) -> Self {
        self.end(move |w, m| m.set(name, leak_ratio(w)))
    }

    /// Standard probe: fraction of the legitimate bytes offered by
    /// [`Role::Legit`] hosts that reached the victim.
    pub fn legit_delivery(self, name: &'static str) -> Self {
        self.end(move |w, m| {
            let offered: u64 = w
                .hosts_with(Role::Legit)
                .iter()
                .map(|&h| w.world.host(h).counters().tx_bytes)
                .sum();
            let received = w.world.host(w.victim()).counters().rx_legit_bytes;
            let frac = if offered == 0 {
                0.0
            } else {
                received as f64 / offered as f64
            };
            m.set(name, frac);
        })
    }

    /// Standard probe: peak wire-speed filter occupancy at a named
    /// network's border router.
    pub fn peak_filters(self, name: &'static str, net: &'static str) -> Self {
        self.end(move |w, m| {
            let peak = w.world.router(w.net(net)).filters().stats().peak_occupancy;
            m.set(name, peak);
        })
    }

    /// Standard probe: peak DRAM shadow occupancy at a named network's
    /// border router.
    pub fn peak_shadows(self, name: &'static str, net: &'static str) -> Self {
        self.end(move |w, m| {
            let peak = w.world.router(w.net(net)).shadow().stats().peak_occupancy;
            m.set(name, peak);
        })
    }

    /// Standard probe: long-term filters installed, summed over a side's
    /// border routers.
    pub fn filters_installed_on(self, name: &'static str, side: Side) -> Self {
        self.end(move |w, m| {
            let total: u64 = w
                .nets_on(side)
                .iter()
                .map(|&n| w.world.router(n).counters().filters_installed)
                .sum();
            m.set(name, total);
        })
    }

    /// Standard probe: filtering requests received, summed over a side's
    /// border routers (the §III-C per-provider message load).
    pub fn requests_received_on(self, name: &'static str, side: Side) -> Self {
        self.end(move |w, m| {
            let total: u64 = w
                .nets_on(side)
                .iter()
                .map(|&n| w.world.router(n).counters().requests_received)
                .sum();
            m.set(name, total);
        })
    }

    /// Enables sampling: the scenario runs in `bin`-sized steps and every
    /// sampled probe records one value per bin.
    pub fn bin(mut self, bin: SimDuration) -> Self {
        self.sample_bin = Some(bin);
        self
    }

    /// Appends a sampled series probe; `emit` controls whether the series
    /// lands in the metrics (as an `_series_*`-style float list).
    pub fn sampled(
        mut self,
        name: &'static str,
        emit: bool,
        f: impl FnMut(&BuiltWorld) -> f64 + 'static,
    ) -> Self {
        self.sampled.push(SampledProbe {
            name,
            emit,
            sample: Box::new(f),
        });
        self
    }

    /// Standard sampled probe: live filter count at a named network's
    /// border router.
    pub fn sampled_filter_occupancy(
        self,
        name: &'static str,
        net: &'static str,
        emit: bool,
    ) -> Self {
        self.sampled(name, emit, move |w| {
            w.world.router(w.net(net)).filters().len() as f64
        })
    }

    /// Standard sampled probe: per-bin delivered bandwidth at the victim
    /// in Mbit/s, from a per-class byte counter (stateful delta). The
    /// rate divides by the simulated time since the previous sample, so
    /// it stays correct for whatever [`ProbeSet::bin`] is in force.
    pub fn sampled_victim_mbps(
        self,
        name: &'static str,
        emit: bool,
        counter: impl Fn(&BuiltWorld) -> u64 + 'static,
    ) -> Self {
        let mut last_bytes = 0u64;
        let mut last_t = 0.0f64;
        self.sampled(name, emit, move |w| {
            let now_bytes = counter(w);
            let now_t = w.world.sim.now().as_secs_f64();
            let bits = (now_bytes - last_bytes) as f64 * 8.0;
            let secs = now_t - last_t;
            last_bytes = now_bytes;
            last_t = now_t;
            if secs > 0.0 {
                bits / secs / 1e6
            } else {
                0.0
            }
        })
    }

    /// Appends a summarizer over the sampled series.
    pub fn summarize(mut self, f: impl FnOnce(&SeriesStore, &mut Params) + 'static) -> Self {
        self.summarizers.push(Box::new(f));
        self
    }

    /// Standard summarizer: time from `after` until the first sample at
    /// or past `after` where the named series is positive — the
    /// scenario's time-to-block when pointed at a filter-occupancy
    /// series. Samples before `after` are ignored entirely (a filter
    /// already live when the measured attack starts still counts from
    /// `after`). Emits `-1` when the series never crosses.
    pub fn time_to_block(self, name: &'static str, series: &'static str, after: f64) -> Self {
        self.summarize(move |s, m| {
            let t = s
                .time_s
                .iter()
                .zip(s.series(series))
                .find(|&(&t, &v)| t >= after && v > 0.0)
                .map_or(-1.0, |(&t, _)| t - after);
            m.set(name, t);
        })
    }
}

/// The victim's attack-leak ratio (see [`ProbeSet::leak_ratio`]).
pub fn leak_ratio(w: &BuiltWorld) -> f64 {
    let offered: u64 = w
        .hosts_with(Role::Attacker)
        .iter()
        .map(|&h| w.world.host(h).counters().tx_bytes)
        .sum();
    if offered == 0 {
        return 0.0;
    }
    w.world.host(w.victim()).counters().rx_attack_bytes as f64 / offered as f64
}

/// Offered bytes so far by one host — a building block for bespoke
/// ratio probes.
pub fn offered_bytes(w: &BuiltWorld, host: HostId) -> u64 {
    w.world.host(host).counters().tx_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_store_window_mean_and_first_time() {
        let store = SeriesStore {
            time_s: vec![0.5, 1.0, 1.5, 2.0],
            series: vec![("x", vec![0.0, 2.0, 4.0, 0.0])],
        };
        assert_eq!(store.window_mean("x", 1.0, 2.0), 3.0);
        assert_eq!(store.first_time("x", |v| v > 0.0), Some(1.0));
        assert_eq!(store.first_time("x", |v| v > 10.0), None);
    }

    #[test]
    fn empty_window_mean_is_nan_not_zero() {
        // Regression: a window past the sampled horizon used to read as
        // 0.0 — indistinguishable from a genuinely-zero series. It must
        // be NaN so callers are forced to map it to the -1 sentinel.
        let store = SeriesStore {
            time_s: vec![0.5, 1.0],
            series: vec![("x", vec![2.0, 4.0])],
        };
        assert!(store.window_mean("x", 5.0, 6.0).is_nan());
        assert!(store.window_mean("x", 1.0, 1.0).is_nan(), "[from, from)");
        assert_eq!(store.window_mean("x", 0.0, 2.0), 3.0, "full window intact");
    }

    #[test]
    #[should_panic(expected = "no sampled series")]
    fn missing_series_panics() {
        let store = SeriesStore::default();
        let _ = store.series("nope");
    }

    #[test]
    fn time_to_block_counts_from_after_even_if_already_positive() {
        // A filter live since t=1.0 and an attack measured from t=1.5:
        // the block time is the first sample at/past `after`, not "never".
        let store = SeriesStore {
            time_s: vec![1.0, 2.0, 3.0],
            series: vec![("f", vec![1.0, 1.0, 1.0]), ("g", vec![0.0, 0.0, 0.0])],
        };
        let probes = ProbeSet::new()
            .time_to_block("blocked_at", "f", 1.5)
            .time_to_block("never", "g", 1.5);
        let mut m = Params::new();
        for summarize in probes.summarizers {
            summarize(&store, &mut m);
        }
        assert_eq!(m.f64("blocked_at"), 0.5);
        assert_eq!(m.f64("never"), -1.0);
    }
}
