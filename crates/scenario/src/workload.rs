//! Declarative workloads: a `WorkloadSpec` is an ordered list of
//! [`TrafficSpec`] entries — flood armies, legitimate flow pools, on/off
//! phases, spoofing floods — each selecting its source hosts by
//! [`Role`] and compiling onto them via the existing
//! [`aitf_core::TrafficApp`] machinery.
//!
//! Compilation order is part of a scenario's identity (it fixes timer
//! sequence numbers and therefore event ordering), so entries install in
//! declaration order and each entry arms its selected hosts in host
//! declaration order.

use std::sync::Arc;

use aitf_attack::{FloodSource, LegitClient, OnOffSource, SpoofingFlood};
use aitf_core::{HostId, TrafficApp};
use aitf_netsim::{SimDuration, SimTime};
use aitf_packet::{Addr, Prefix};

use crate::topology::{BuiltWorld, Role};

/// Selects the source hosts of a traffic entry.
#[derive(Debug, Clone)]
pub enum HostSel {
    /// One host, by declaration index.
    Index(usize),
    /// Every host with the role, in declaration order.
    Role(Role),
    /// The first `n` hosts with the role, in declaration order.
    RoleFirst(Role, usize),
    /// `count` hosts with the role starting at offset `start` (declaration
    /// order) — churn waves address disjoint groups of one role with this.
    RoleSlice(Role, usize, usize),
}

impl HostSel {
    /// Resolves the selection against a built world.
    ///
    /// # Panics
    ///
    /// Panics when a [`HostSel::RoleSlice`] reaches past the role's pool —
    /// a mis-sized wave is a scenario-authoring bug.
    pub fn resolve(&self, world: &BuiltWorld) -> Vec<HostId> {
        match *self {
            HostSel::Index(i) => vec![world.host_id(i)],
            HostSel::Role(role) => world.hosts_with(role),
            HostSel::RoleFirst(role, n) => {
                let mut hosts = world.hosts_with(role);
                hosts.truncate(n);
                hosts
            }
            HostSel::RoleSlice(role, start, count) => {
                let hosts = world.hosts_with(role);
                assert!(
                    start + count <= hosts.len(),
                    "RoleSlice({role:?}, {start}, {count}) reaches past the {} hosts of that role",
                    hosts.len()
                );
                hosts[start..start + count].to_vec()
            }
        }
    }
}

/// Selects where a traffic entry's packets go.
#[derive(Debug, Clone, Copy)]
pub enum TargetSel {
    /// The world's victim (first [`Role::Victim`] host).
    Victim,
    /// A fixed host, by declaration index.
    Host(usize),
    /// The `i`-th selected source targets the `i`-th host of this role —
    /// distinct zombie→victim pairs (E5's per-flow layout).
    Paired(Role),
}

impl TargetSel {
    /// Resolves the target address for each of `n` sources, looking any
    /// role pool up once (not per source).
    ///
    /// # Panics
    ///
    /// Panics when a paired role has fewer hosts than there are sources.
    fn resolve_all(&self, world: &BuiltWorld, n: usize) -> Vec<Addr> {
        match *self {
            TargetSel::Victim => vec![world.world.host_addr(world.victim()); n],
            TargetSel::Host(i) => vec![world.world.host_addr(world.host_id(i)); n],
            TargetSel::Paired(role) => {
                let pool = world.hosts_with(role);
                assert!(
                    pool.len() >= n,
                    "paired target: {} sources but only {} {:?} hosts",
                    n,
                    pool.len(),
                    role
                );
                pool[..n]
                    .iter()
                    .map(|&h| world.world.host_addr(h))
                    .collect()
            }
        }
    }
}

/// A traffic rate: either per selected host, or an aggregate split across
/// them.
#[derive(Debug, Clone, Copy)]
pub enum Rate {
    /// Each selected host sends at this rate (packets/second).
    PerHost(u64),
    /// The selected hosts share this total rate: each gets `total / n`
    /// packets/second, with the remainder distributed one packet/second
    /// to the first `total % n` hosts.
    Aggregate(u64),
}

impl Rate {
    /// Splits the rate over `n` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if an aggregate rate is too low to give
    /// every host at least one packet/second.
    pub fn split(&self, n: usize) -> Vec<u64> {
        assert!(n > 0, "rate split over zero hosts");
        match *self {
            Rate::PerHost(pps) => vec![pps; n],
            Rate::Aggregate(total) => {
                let base = total / n as u64;
                let extra = (total % n as u64) as usize;
                assert!(
                    base > 0,
                    "aggregate rate {total} pps cannot cover {n} hosts"
                );
                (0..n).map(|i| base + u64::from(i < extra)).collect()
            }
        }
    }
}

/// Factory closure for bespoke traffic applications (forgers, protocol
/// hoppers) that need world addresses at install time.
pub type AppFactory = Arc<dyn Fn(&BuiltWorld, HostId) -> Box<dyn TrafficApp> + Send + Sync>;

/// What kind of traffic an entry generates.
pub enum TrafficKind {
    /// A constant-rate flood ([`FloodSource`]).
    Flood {
        /// Flood rate.
        rate: Rate,
        /// Packet size in bytes.
        size: u32,
    },
    /// The on-off evasion pattern ([`OnOffSource`]).
    OnOff {
        /// Rate during on-phases, packets/second.
        pps: u64,
        /// Packet size in bytes.
        size: u32,
        /// On-phase length.
        on_period: SimDuration,
        /// Off-phase length.
        off_period: SimDuration,
    },
    /// A source-address spoofing flood ([`SpoofingFlood`]).
    Spoof {
        /// Rate, packets/second.
        pps: u64,
        /// Packet size in bytes.
        size: u32,
        /// Prefix the spoofed sources are drawn from.
        pool: Prefix,
        /// Number of distinct spoofed sources.
        pool_size: u32,
        /// Draw randomly instead of round-robin.
        random: bool,
    },
    /// Legitimate foreground traffic ([`LegitClient`]).
    Legit {
        /// Rate, packets/second.
        pps: u64,
        /// Packet size in bytes.
        size: u32,
        /// Poisson inter-arrivals instead of CBR.
        poisson: bool,
    },
    /// Heavy-tailed legitimate background load: host `i` of the selection
    /// sends Poisson traffic at `base_pps / uᵢ^(1/alpha)` packets/second,
    /// where `uᵢ` is a per-host uniform draw — a Pareto(`alpha`) rate mix
    /// (most hosts near `base_pps`, a few heavy elephants), capped at
    /// `cap_pps` so one lucky draw cannot out-flood the attack.
    LegitPareto {
        /// Minimum (and modal) per-host rate, packets/second.
        base_pps: u64,
        /// Rate ceiling, packets/second.
        cap_pps: u64,
        /// Pareto shape: smaller is heavier-tailed (1.2 ≈ measured flow
        /// size distributions).
        alpha: f64,
        /// Packet size in bytes.
        size: u32,
        /// Seed of the per-host draws — part of the workload's identity,
        /// independent of the run seed.
        seed: u64,
    },
    /// A bespoke [`TrafficApp`] built at install time.
    Custom(AppFactory),
}

impl std::fmt::Debug for TrafficKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficKind::Flood { rate, size } => f
                .debug_struct("Flood")
                .field("rate", rate)
                .field("size", size)
                .finish(),
            TrafficKind::OnOff { pps, .. } => f.debug_struct("OnOff").field("pps", pps).finish(),
            TrafficKind::Spoof { pps, .. } => f.debug_struct("Spoof").field("pps", pps).finish(),
            TrafficKind::Legit { pps, .. } => f.debug_struct("Legit").field("pps", pps).finish(),
            TrafficKind::LegitPareto {
                base_pps, alpha, ..
            } => f
                .debug_struct("LegitPareto")
                .field("base_pps", base_pps)
                .field("alpha", alpha)
                .finish(),
            TrafficKind::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// One workload entry: a kind of traffic, its sources, its target and its
/// activation window.
#[derive(Debug)]
pub struct TrafficSpec {
    /// Source hosts.
    pub on: HostSel,
    /// Destination (ignored by [`TrafficKind::Custom`]).
    pub to: TargetSel,
    /// Traffic shape.
    pub kind: TrafficKind,
    /// Delay before the first selected host starts.
    pub start_after: SimDuration,
    /// Extra delay per selected host (`i`-th host starts at
    /// `start_after + i · stagger`) — staggered zombie armies.
    pub stagger: SimDuration,
    /// Absolute stop time, if any.
    pub stop_at: Option<SimTime>,
}

impl TrafficSpec {
    fn new(on: HostSel, to: TargetSel, kind: TrafficKind) -> Self {
        TrafficSpec {
            on,
            to,
            kind,
            start_after: SimDuration::ZERO,
            stagger: SimDuration::ZERO,
            stop_at: None,
        }
    }

    /// A constant-rate flood at `pps` packets/second per host.
    pub fn flood(on: HostSel, to: TargetSel, pps: u64, size: u32) -> Self {
        Self::new(
            on,
            to,
            TrafficKind::Flood {
                rate: Rate::PerHost(pps),
                size,
            },
        )
    }

    /// A flood whose `total_pps` is split across the selected hosts.
    pub fn flood_aggregate(on: HostSel, to: TargetSel, total_pps: u64, size: u32) -> Self {
        Self::new(
            on,
            to,
            TrafficKind::Flood {
                rate: Rate::Aggregate(total_pps),
                size,
            },
        )
    }

    /// An on-off flood.
    pub fn onoff(
        on: HostSel,
        to: TargetSel,
        pps: u64,
        size: u32,
        on_period: SimDuration,
        off_period: SimDuration,
    ) -> Self {
        Self::new(
            on,
            to,
            TrafficKind::OnOff {
                pps,
                size,
                on_period,
                off_period,
            },
        )
    }

    /// A round-robin spoofing flood.
    pub fn spoof(
        on: HostSel,
        to: TargetSel,
        pps: u64,
        size: u32,
        pool: Prefix,
        pool_size: u32,
    ) -> Self {
        Self::new(
            on,
            to,
            TrafficKind::Spoof {
                pps,
                size,
                pool,
                pool_size,
                random: false,
            },
        )
    }

    /// A legitimate CBR client.
    pub fn legit(on: HostSel, to: TargetSel, pps: u64, size: u32) -> Self {
        Self::new(
            on,
            to,
            TrafficKind::Legit {
                pps,
                size,
                poisson: false,
            },
        )
    }

    /// Heavy-tailed legitimate background load (Pareto per-host rates,
    /// Poisson arrivals) — see [`TrafficKind::LegitPareto`].
    pub fn legit_pareto(
        on: HostSel,
        to: TargetSel,
        base_pps: u64,
        cap_pps: u64,
        alpha: f64,
        size: u32,
        seed: u64,
    ) -> Self {
        assert!(alpha > 0.0, "Pareto shape must be positive, got {alpha}");
        assert!(base_pps > 0, "base rate must be nonzero");
        assert!(cap_pps >= base_pps, "cap below the base rate");
        Self::new(
            on,
            to,
            TrafficKind::LegitPareto {
                base_pps,
                cap_pps,
                alpha,
                size,
                seed,
            },
        )
    }

    /// A bespoke app per selected host.
    pub fn custom(
        on: HostSel,
        make: impl Fn(&BuiltWorld, HostId) -> Box<dyn TrafficApp> + Send + Sync + 'static,
    ) -> Self {
        Self::new(on, TargetSel::Victim, TrafficKind::Custom(Arc::new(make)))
    }

    /// Delays the entry's start.
    pub fn starting_after(mut self, delay: SimDuration) -> Self {
        self.start_after = delay;
        self
    }

    /// Staggers consecutive hosts' starts.
    pub fn staggered(mut self, stagger: SimDuration) -> Self {
        self.stagger = stagger;
        self
    }

    /// Stops the entry at an absolute time.
    pub fn stopping_at(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Installs this entry's apps onto the built world — before the run
    /// starts (the [`WorkloadSpec::compile`] path) or *mid-run*, where the
    /// apps activate immediately at the current virtual time (the churn
    /// `StartTraffic` path; `starting_after`/`stagger` then count from
    /// now).
    ///
    /// # Panics
    ///
    /// Panics on specs the underlying sources cannot express (start/stop
    /// windows on kinds without them) and on entries that select no
    /// hosts — either way a scenario-authoring bug, and a silently empty
    /// entry would masquerade as a perfectly defended run.
    pub fn install(&self, world: &mut BuiltWorld) {
        let sources = self.on.resolve(world);
        assert!(
            !sources.is_empty(),
            "traffic entry {:?} selects no hosts",
            self.on
        );
        let rates = match &self.kind {
            TrafficKind::Flood { rate, size: _ } => Some(rate.split(sources.len())),
            _ => None,
        };
        let targets = self.to.resolve_all(world, sources.len());
        for (i, &host) in sources.iter().enumerate() {
            let start = self.start_after + self.stagger * i as u64;
            let windowless = |what: &str| {
                assert!(
                    start.is_zero() && self.stop_at.is_none(),
                    "{what} traffic does not support start/stop windows"
                );
            };
            let app: Box<dyn TrafficApp> = match &self.kind {
                TrafficKind::Flood { size, .. } => {
                    let pps = rates.as_ref().expect("rates computed for floods")[i];
                    let mut flood = FloodSource::new(targets[i], pps, *size).starting_after(start);
                    if let Some(stop) = self.stop_at {
                        flood = flood.stopping_at(stop);
                    }
                    Box::new(flood)
                }
                TrafficKind::OnOff {
                    pps,
                    size,
                    on_period,
                    off_period,
                } => {
                    windowless("on-off");
                    Box::new(OnOffSource::new(
                        targets[i],
                        *pps,
                        *size,
                        *on_period,
                        *off_period,
                    ))
                }
                TrafficKind::Spoof {
                    pps,
                    size,
                    pool,
                    pool_size,
                    random,
                } => {
                    // Spoofing floods support a start window (so a zombie
                    // army can stagger off a shared period lattice) but no
                    // stop window.
                    assert!(
                        self.stop_at.is_none(),
                        "spoofing traffic does not support a stop window"
                    );
                    let mut s = SpoofingFlood::new(targets[i], *pps, *size, *pool, *pool_size)
                        .starting_after(start);
                    if *random {
                        s = s.randomised();
                    }
                    Box::new(s)
                }
                TrafficKind::Legit { pps, size, poisson } => {
                    windowless("legitimate");
                    let mut c = LegitClient::new(targets[i], *pps, *size);
                    if *poisson {
                        c = c.poisson();
                    }
                    Box::new(c)
                }
                TrafficKind::LegitPareto {
                    base_pps,
                    cap_pps,
                    alpha,
                    size,
                    seed,
                } => {
                    windowless("legitimate");
                    // u ∈ (0, 1] from the top 53 bits of a splitmix draw;
                    // rate = base/u^(1/α) is the Pareto inverse-CDF.
                    let draw = aitf_engine::splitmix(*seed ^ (i as u64).wrapping_mul(0x9E37));
                    let u = ((draw >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                    let rate = (*base_pps as f64 / u.powf(1.0 / *alpha)) as u64;
                    let pps = rate.clamp(*base_pps, *cap_pps);
                    // Per-client seeded Poisson: the shared simulation
                    // stream is per-shard, so drawing from it would make
                    // arrivals depend on the shard partition.
                    let arrivals = aitf_engine::splitmix(draw ^ 0x00AA_1234);
                    Box::new(LegitClient::new(targets[i], pps, *size).poisson_seeded(arrivals))
                }
                TrafficKind::Custom(make) => {
                    windowless("custom");
                    make(&*world, host)
                }
            };
            world.world.activate_app(host, app);
        }
    }
}

/// An ordered list of traffic entries.
#[derive(Debug, Default)]
pub struct WorkloadSpec {
    /// The entries, in installation order.
    pub traffic: Vec<TrafficSpec>,
}

impl WorkloadSpec {
    /// An empty workload.
    pub fn new() -> Self {
        WorkloadSpec::default()
    }

    /// Builder-style append.
    pub fn with(mut self, spec: TrafficSpec) -> Self {
        self.traffic.push(spec);
        self
    }

    /// Appends an entry.
    pub fn push(&mut self, spec: TrafficSpec) {
        self.traffic.push(spec);
    }

    /// Installs every entry's apps onto the built world, in order (see
    /// [`TrafficSpec::install`] for the per-entry semantics and panics).
    pub fn compile(&self, world: &mut BuiltWorld) {
        for spec in &self.traffic {
            spec.install(world);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_host_rate_split_is_even_with_remainder_up_front() {
        assert_eq!(Rate::PerHost(50).split(3), vec![50, 50, 50]);
        assert_eq!(Rate::Aggregate(1000).split(4), vec![250, 250, 250, 250]);
        assert_eq!(Rate::Aggregate(10).split(3), vec![4, 3, 3]);
        let split = Rate::Aggregate(1001).split(4);
        assert_eq!(split, vec![251, 250, 250, 250]);
        assert_eq!(split.iter().sum::<u64>(), 1001);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn aggregate_rate_must_cover_every_host() {
        let _ = Rate::Aggregate(3).split(5);
    }

    #[test]
    #[should_panic(expected = "zero hosts")]
    fn rate_split_rejects_zero_hosts() {
        let _ = Rate::PerHost(10).split(0);
    }

    #[test]
    fn pareto_rates_are_heavy_tailed_capped_and_deterministic() {
        // Reproduce install()'s per-host draw directly: rates sit in
        // [base, cap], most near base, with a genuine tail.
        let rate_for = |i: usize, seed: u64| {
            let draw = aitf_engine::splitmix(seed ^ (i as u64).wrapping_mul(0x9E37));
            let u = ((draw >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            ((100.0 / u.powf(1.0 / 1.2)) as u64).clamp(100, 10_000)
        };
        let rates: Vec<u64> = (0..2000).map(|i| rate_for(i, 7)).collect();
        assert!(rates.iter().all(|&r| (100..=10_000).contains(&r)));
        let modest = rates.iter().filter(|&&r| r < 400).count();
        assert!(modest > 1200, "bulk must sit near base: {modest}");
        let elephants = rates.iter().filter(|&&r| r >= 2000).count();
        assert!(
            (1..200).contains(&elephants),
            "tail must exist but stay rare: {elephants}"
        );
        assert_eq!(rates, (0..2000).map(|i| rate_for(i, 7)).collect::<Vec<_>>());
    }
}
