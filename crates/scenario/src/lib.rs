//! # aitf-scenario — declarative AITF experiment scenarios
//!
//! A scenario is three composable, declarative pieces plus a config:
//!
//! ```text
//! Scenario {
//!     topology:   TopologySpec,   // fig1 / chain_pair / star / tree / custom
//!     deployment: DeploymentSpec, // which networks run AITF (partial deployment)
//!     workload:   WorkloadSpec,   // floods, legit pools, on/off, spoofing
//!     churn:      ChurnSpec,      // scheduled mid-run mutations (dynamic worlds)
//!     probes:     ProbeSet,       // leak ratio, filter peaks, sampled series
//!     config:     AitfConfig,     // + duration, defense (AITF vs pushback vs ...)
//! }
//! ```
//!
//! [`Scenario::run`] builds the [`aitf_core::World`], compiles the
//! workload onto its hosts, simulates, measures, and returns an
//! [`aitf_engine::Outcome`] — so scenario definitions plug straight into
//! the engine's registry/runner and their records carry metrics in probe
//! declaration order. [`Scenario::build`] is the escape hatch for
//! experiments that drive the simulation in custom phases.
//!
//! Determinism contract: a `TopologySpec` lowers onto
//! [`aitf_core::WorldBuilder`] in one canonical order (networks,
//! peerings, hosts — each in declaration order) and workloads install in
//! declaration order, so equal specs produce bit-identical worlds and,
//! under the engine's derived seeds, bit-identical run records at any
//! thread count.
//!
//! The [`worlds`] module keeps the imperative canned worlds (`fig1`,
//! `chain_pair`, `star`) for examples and integration tests; they are
//! thin wrappers over the same generators.

pub mod alloc;
pub mod churn;
pub mod deploy;
pub mod probe;
pub mod scenario;
pub mod stream;
pub mod topology;
pub mod workload;
pub mod worlds;

pub use alloc::PrefixAlloc;
pub use churn::{ChurnAction, ChurnSpec, EventSpec};
pub use deploy::{DeploymentChoice, DeploymentSpec};
pub use probe::{leak_ratio, ProbeSet, SeriesStore, StreamProbeConfig, VictimStreamTap};
pub use scenario::{Scenario, ScenarioError};
pub use stream::{CountMinSketch, Reservoir, TopK};
pub use topology::{
    BuiltWorld, HostDecl, NetDecl, NetSel, PeeringDecl, PowerLawSpec, Role, Side, TopologySpec,
};
pub use workload::{HostSel, Rate, TargetSel, TrafficKind, TrafficSpec, WorkloadSpec};
pub use worlds::{chain_pair, fig1, star, ChainWorld, Fig1World, StarWorld};
