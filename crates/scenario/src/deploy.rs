//! Partial deployment as a declarative, sweepable scenario dimension.
//!
//! AITF's deployment claim (Section III of the paper) is that the protocol
//! pays off *before* everyone runs it: a victim whose provider deploys is
//! protected immediately, and every additional participating provider
//! moves filtering closer to the attackers. A [`DeploymentSpec`] makes
//! "who participates" a first-class property of a [`crate::Scenario`]:
//!
//! - [`DeploymentSpec::full`] — everyone runs AITF (the default; scenarios
//!   without a deployment spec are byte-identical to before this layer
//!   existed);
//! - [`DeploymentSpec::legacy_nets`] — an explicit list of networks that
//!   do not participate;
//! - [`DeploymentSpec::fraction`] — a seed-derived fraction of the
//!   eligible networks participates. Assignment is **nested**: for a fixed
//!   seed, the networks deployed at fraction `f1 < f2` are a subset of
//!   those deployed at `f2`, so a fraction sweep isolates the deployment
//!   axis (E16's monotone-incentive claim rests on this). Victim-side
//!   networks ([`Side::Victim`]) always participate — the victim's own
//!   provider is the first adopter, which is exactly the paper's incentive
//!   ordering.
//!
//! Non-participating networks get [`RouterPolicy::legacy`] by default
//! (no stamping, no filtering, requests ignored); override with
//! [`DeploymentSpec::with_policy`] to model e.g. non-cooperating-but-
//! stamping providers instead.

use aitf_core::RouterPolicy;
// The seed-derived ranking behind fractional assignment is the engine
// family's SplitMix64 mixer, shared with derived sweep seeds.
use aitf_engine::splitmix as splitmix64;

use crate::topology::{Side, TopologySpec};

/// How the non-participating networks are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentChoice {
    /// Every network participates.
    Full,
    /// The named networks do not participate.
    LegacyNets(Vec<String>),
    /// This fraction of the eligible (non-victim-side) networks
    /// participates; the rest are legacy. Seed-derived, nested across
    /// fractions for a fixed seed.
    Fraction(f64),
}

/// The deployment dimension of a scenario: which networks run AITF.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSpec {
    /// Who participates.
    pub choice: DeploymentChoice,
    /// The policy non-participating networks run.
    pub policy: RouterPolicy,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec::full()
    }
}

impl DeploymentSpec {
    /// Full deployment (the default).
    pub fn full() -> Self {
        DeploymentSpec {
            choice: DeploymentChoice::Full,
            policy: RouterPolicy::legacy(),
        }
    }

    /// The named networks are legacy; everyone else participates.
    pub fn legacy_nets(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        DeploymentSpec {
            choice: DeploymentChoice::LegacyNets(names.into_iter().map(Into::into).collect()),
            policy: RouterPolicy::legacy(),
        }
    }

    /// A seed-derived `aitf_fraction` of the eligible networks
    /// participates (victim-side networks always do).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= aitf_fraction <= 1.0`.
    pub fn fraction(aitf_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&aitf_fraction),
            "aitf_fraction must be in [0, 1], got {aitf_fraction}"
        );
        DeploymentSpec {
            choice: DeploymentChoice::Fraction(aitf_fraction),
            policy: RouterPolicy::legacy(),
        }
    }

    /// Overrides the policy non-participating networks run (e.g.
    /// [`RouterPolicy::non_cooperating`] for providers that stamp but
    /// ignore requests).
    pub fn with_policy(mut self, policy: RouterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns `true` when the spec changes nothing (full deployment).
    pub fn is_full(&self) -> bool {
        matches!(self.choice, DeploymentChoice::Full)
    }

    /// The indices (into `topo.nets`) of the networks this spec marks as
    /// non-participating, for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if an explicit legacy net name does not exist in the
    /// topology — a misspelled deployment list must not silently mean
    /// "everyone deployed".
    pub fn legacy_indices(&self, topo: &TopologySpec, seed: u64) -> Vec<usize> {
        match &self.choice {
            DeploymentChoice::Full => Vec::new(),
            DeploymentChoice::LegacyNets(names) => {
                names.iter().map(|n| topo.net_index(n)).collect()
            }
            DeploymentChoice::Fraction(f) => {
                // Eligible: everything but the victim's own provider
                // chain (and nets already declared legacy stay legacy).
                let eligible: Vec<usize> = topo
                    .nets
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.side != Side::Victim && n.policy.aitf_enabled)
                    .map(|(i, _)| i)
                    .collect();
                let deployed = (f * eligible.len() as f64).round() as usize;
                // Rank by a seed-derived key; the first `deployed` in rank
                // order participate. Fixed seed ⇒ nested deployments
                // across fractions.
                let mut ranked = eligible;
                ranked.sort_by_key(|&i| (splitmix64(seed ^ (i as u64 + 1)), i));
                ranked.split_off(deployed.min(ranked.len()))
            }
        }
    }

    /// Applies the spec to a topology: returns a copy whose
    /// non-participating networks run [`DeploymentSpec::policy`].
    pub fn apply(&self, topo: &TopologySpec, seed: u64) -> TopologySpec {
        let mut patched = topo.clone();
        for i in self.legacy_indices(topo, seed) {
            patched.nets[i].policy = self.policy;
        }
        patched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_core::HostPolicy;

    fn tree() -> TopologySpec {
        TopologySpec::tree(2, 3, 2, HostPolicy::Malicious, 10_000_000)
    }

    #[test]
    fn full_deployment_changes_nothing() {
        let topo = tree();
        let spec = DeploymentSpec::full();
        assert!(spec.is_full());
        assert!(spec.legacy_indices(&topo, 7).is_empty());
        let patched = spec.apply(&topo, 7);
        assert!(patched.nets.iter().all(|n| n.policy.aitf_enabled));
    }

    #[test]
    fn explicit_legacy_nets_resolve_by_name() {
        let topo = tree();
        let spec = DeploymentSpec::legacy_nets(["ad_0", "zombie_net_4"]);
        let patched = spec.apply(&topo, 1);
        for n in &patched.nets {
            let expect_legacy = n.name == "ad_0" || n.name == "zombie_net_4";
            assert_eq!(!n.policy.aitf_enabled, expect_legacy, "{}", n.name);
        }
    }

    #[test]
    #[should_panic(expected = "no network named")]
    fn misspelled_legacy_net_fails_loudly() {
        let _ = DeploymentSpec::legacy_nets(["nope"]).legacy_indices(&tree(), 1);
    }

    #[test]
    fn fraction_is_nested_across_sweeps_and_spares_the_victim_side() {
        let topo = tree();
        let seed = 42;
        let mut previous: Option<std::collections::HashSet<usize>> = None;
        for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let legacy: std::collections::HashSet<usize> = DeploymentSpec::fraction(f)
                .legacy_indices(&topo, seed)
                .into_iter()
                .collect();
            for &i in &legacy {
                assert_ne!(
                    topo.nets[i].side,
                    Side::Victim,
                    "victim side always deploys"
                );
            }
            if let Some(prev) = &previous {
                // Higher fraction ⇒ fewer legacy nets, and a subset of the
                // previous legacy set (nested deployment).
                assert!(legacy.is_subset(prev), "assignment must be nested");
            }
            previous = Some(legacy);
        }
        // f = 1 means everyone deploys; f = 0 means every eligible net is
        // legacy (13 of the 14 tree nets — all but victim_net).
        assert!(previous.expect("loop ran").is_empty());
        assert_eq!(
            DeploymentSpec::fraction(0.0)
                .legacy_indices(&topo, seed)
                .len(),
            topo.nets.len() - 1
        );
    }

    #[test]
    fn fraction_assignment_depends_on_seed() {
        let topo = tree();
        let a = DeploymentSpec::fraction(0.5).legacy_indices(&topo, 1);
        let b = DeploymentSpec::fraction(0.5).legacy_indices(&topo, 2);
        assert_eq!(a, DeploymentSpec::fraction(0.5).legacy_indices(&topo, 1));
        assert_ne!(a, b, "different seeds should shuffle the assignment");
    }

    #[test]
    #[should_panic(expected = "aitf_fraction must be in")]
    fn fraction_out_of_range_is_rejected() {
        let _ = DeploymentSpec::fraction(1.5);
    }

    #[test]
    fn custom_policy_applies_to_legacy_nets() {
        let topo = tree();
        let spec =
            DeploymentSpec::legacy_nets(["ad_1"]).with_policy(RouterPolicy::non_cooperating());
        let patched = spec.apply(&topo, 1);
        let i = patched.net_index("ad_1");
        assert!(patched.nets[i].policy.aitf_enabled);
        assert!(!patched.nets[i].policy.cooperating);
    }
}
