//! Pre-built canned worlds: the imperative face of the topology
//! generators, for examples, integration tests and code that drives the
//! simulation by hand. Each function lowers the corresponding
//! [`TopologySpec`] generator and returns the built world with named
//! handles — the API `aitf_attack::scenarios` used to provide, now backed
//! by the declarative layer so the two can never drift apart.

use aitf_core::{AitfConfig, HostId, HostPolicy, NetId, World};

use crate::topology::{Role, Side, TopologySpec};

/// The paper's Figure 1 world.
pub struct Fig1World {
    /// The built world.
    pub world: World,
    /// `G_net` (victim's enterprise network; its router is G_gw1).
    pub g_net: NetId,
    /// `G_isp` (router G_gw2).
    pub g_isp: NetId,
    /// `G_wan` (router G_gw3).
    pub g_wan: NetId,
    /// `B_net` (attacker's network; router B_gw1 is the attacker's gateway).
    pub b_net: NetId,
    /// `B_isp` (router B_gw2).
    pub b_isp: NetId,
    /// `B_wan` (router B_gw3).
    pub b_wan: NetId,
    /// `G_host`, the victim.
    pub victim: HostId,
    /// `B_host`, the attacker.
    pub attacker: HostId,
}

/// Builds the Figure 1 topology with the given attacker host policy.
pub fn fig1(cfg: AitfConfig, seed: u64, attacker_policy: HostPolicy) -> Fig1World {
    let built = TopologySpec::fig1(attacker_policy).build(seed, cfg);
    Fig1World {
        g_net: built.net("G_net"),
        g_isp: built.net("G_isp"),
        g_wan: built.net("G_wan"),
        b_net: built.net("B_net"),
        b_isp: built.net("B_isp"),
        b_wan: built.net("B_wan"),
        victim: built.victim(),
        attacker: built.first_with(Role::Attacker),
        world: built.world,
    }
}

/// A Figure-1-like world with configurable chain depth.
pub struct ChainWorld {
    /// The built world.
    pub world: World,
    /// Victim-side networks, leaf (victim's gateway) first.
    pub g_chain: Vec<NetId>,
    /// Attacker-side networks, leaf (attacker's gateway) first.
    pub b_chain: Vec<NetId>,
    /// The victim host.
    pub victim: HostId,
    /// The attacker host.
    pub attacker: HostId,
}

/// Builds two provider chains of `depth` networks each, peered at the
/// top; `depth = 3` is exactly [`fig1`]'s shape.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn chain_pair(
    cfg: AitfConfig,
    seed: u64,
    depth: usize,
    attacker_policy: HostPolicy,
) -> ChainWorld {
    let built = TopologySpec::chain_pair(depth, attacker_policy).build(seed, cfg);
    // Generators declare each chain top-down; leaf-first is the reverse.
    let chain = |side: Side| {
        let mut nets = built.nets_on(side);
        nets.reverse();
        nets
    };
    ChainWorld {
        g_chain: chain(Side::Victim),
        b_chain: chain(Side::Attacker),
        victim: built.victim(),
        attacker: built.first_with(Role::Attacker),
        world: built.world,
    }
}

/// One victim network and `M` attacker networks around a hub.
pub struct StarWorld {
    /// The built world.
    pub world: World,
    /// The hub (top-level AD).
    pub hub: NetId,
    /// The victim's network.
    pub victim_net: NetId,
    /// The victim host.
    pub victim: HostId,
    /// Attacker networks.
    pub attacker_nets: Vec<NetId>,
    /// Zombie hosts, grouped by network in order.
    pub zombies: Vec<HostId>,
}

/// Builds a star: `n_nets` attacker networks with `hosts_per_net` zombies
/// each, all clients of one hub AD that also serves the victim's network.
pub fn star(
    cfg: AitfConfig,
    seed: u64,
    n_nets: usize,
    hosts_per_net: usize,
    zombie_policy: HostPolicy,
    victim_tail_bps: u64,
) -> StarWorld {
    let built =
        TopologySpec::star(n_nets, hosts_per_net, zombie_policy, victim_tail_bps).build(seed, cfg);
    StarWorld {
        hub: built.net("hub"),
        victim_net: built.net("victim_net"),
        victim: built.victim(),
        attacker_nets: built.nets_on(Side::Attacker),
        zombies: built.hosts_with(Role::Attacker),
        world: built.world,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_netsim::SimDuration;

    #[test]
    fn fig1_handles_name_the_right_nets() {
        let f = fig1(AitfConfig::default(), 1, HostPolicy::Malicious);
        assert_eq!(f.world.net_name(f.g_net), "G_net");
        assert_eq!(f.world.net_name(f.b_wan), "B_wan");
        assert!(f.world.uplink(f.g_net).is_some());
        assert!(f.world.uplink(f.g_wan).is_none());
        assert!(f
            .world
            .net_prefix(f.b_net)
            .contains(f.world.host_addr(f.attacker)));
    }

    #[test]
    fn chain_world_is_leaf_first() {
        let c = chain_pair(AitfConfig::default(), 1, 3, HostPolicy::Compliant);
        assert_eq!(c.g_chain.len(), 3);
        assert!(c.world.uplink(c.g_chain[0]).is_some(), "leaf has an uplink");
        assert!(c.world.uplink(c.g_chain[2]).is_none(), "top is peered");
        assert_eq!(c.world.host_net(c.victim), c.g_chain[0]);
    }

    #[test]
    fn deep_chain_routes_end_to_end() {
        let mut c = chain_pair(AitfConfig::default(), 1, 6, HostPolicy::Compliant);
        let target = c.world.host_addr(c.victim);
        c.world.add_app(
            c.attacker,
            Box::new(aitf_attack::LegitClient::new(target, 50, 500)),
        );
        c.world.sim.run_for(SimDuration::from_secs(2));
        assert!(c.world.host(c.victim).counters().rx_legit_pkts > 80);
    }

    #[test]
    fn star_world_handles() {
        let s = star(
            AitfConfig::default(),
            1,
            8,
            3,
            HostPolicy::Malicious,
            10_000_000,
        );
        assert_eq!(s.attacker_nets.len(), 8);
        assert_eq!(s.zombies.len(), 24);
        assert_eq!(s.world.net_count(), 10);
        assert_eq!(s.world.host_count(), 25);
        assert_eq!(s.world.host_net(s.zombies[0]), s.attacker_nets[0]);
    }
}
