//! The top-level `Scenario`: topology × workload × probes × config, run
//! end-to-end into an [`aitf_engine::Outcome`].
//!
//! A scenario is the declarative unit the experiment registry's runner
//! closures construct per sweep point:
//!
//! ```
//! use aitf_core::{AitfConfig, HostPolicy};
//! use aitf_engine::Params;
//! use aitf_netsim::SimDuration;
//! use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};
//!
//! let outcome = Scenario::new(TopologySpec::fig1(HostPolicy::Malicious))
//!     .config(AitfConfig::default())
//!     .duration(SimDuration::from_secs(2))
//!     .traffic(TrafficSpec::flood(
//!         HostSel::Role(Role::Attacker),
//!         TargetSel::Victim,
//!         500,
//!         500,
//!     ))
//!     .probes(ProbeSet::new().leak_ratio("leak_r"))
//!     .run(42);
//! assert!(outcome.metrics.f64("leak_r") < 1.0);
//! assert!(outcome.events > 0);
//! ```

use aitf_core::AitfConfig;
use aitf_engine::{Outcome, Params};
use aitf_netsim::SimDuration;

use crate::probe::{ProbeSet, SeriesStore};
use crate::topology::{Backend, BuiltWorld, TopologySpec};
use crate::workload::{TrafficSpec, WorkloadSpec};

/// A complete declarative experiment point.
pub struct Scenario {
    /// Protocol configuration shared by every node.
    pub config: AitfConfig,
    /// The world's shape.
    pub topology: TopologySpec,
    /// The traffic driving it.
    pub workload: WorkloadSpec,
    /// What to measure.
    pub probes: ProbeSet,
    /// How long to simulate.
    pub duration: SimDuration,
    /// Which router implementation runs.
    pub backend: Backend,
}

impl Scenario {
    /// A scenario over `topology` with default config, an empty workload,
    /// no probes and a 10 s horizon.
    pub fn new(topology: TopologySpec) -> Self {
        Scenario {
            config: AitfConfig::default(),
            topology,
            workload: WorkloadSpec::new(),
            probes: ProbeSet::new(),
            duration: SimDuration::from_secs(10),
            backend: Backend::Aitf,
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, cfg: AitfConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Replaces the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Appends one traffic entry.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.workload.push(spec);
        self
    }

    /// Sets the probe set.
    pub fn probes(mut self, probes: ProbeSet) -> Self {
        self.probes = probes;
        self
    }

    /// Sets the simulated horizon.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Selects the router backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the world and installs the workload without running it —
    /// the escape hatch for experiments that drive the simulation in
    /// custom phases (mid-run snapshots, incremental sampling).
    pub fn build(&self, seed: u64) -> BuiltWorld {
        let mut world = self
            .topology
            .build_with(seed, self.config.clone(), self.backend);
        self.workload.compile(&mut world);
        world
    }

    /// Builds, runs and measures the scenario: the declarative path from
    /// spec to [`Outcome`]. Metrics appear in probe declaration order
    /// (end probes, summarizers, then emitted series); the simulator's
    /// dispatched-event count is attached for the engine's telemetry.
    pub fn run(self, seed: u64) -> Outcome {
        let mut world = self.build(seed);
        let ProbeSet {
            end,
            sample_bin,
            mut sampled,
            summarizers,
        } = self.probes;

        let mut store = SeriesStore::default();
        match sample_bin {
            None => {
                assert!(
                    sampled.is_empty() && summarizers.is_empty(),
                    "sampled probes/summarizers need ProbeSet::bin"
                );
                world.world.sim.run_for(self.duration);
            }
            Some(bin) => {
                for probe in &sampled {
                    store.series.push((probe.name, Vec::new()));
                }
                let mut elapsed = SimDuration::ZERO;
                while elapsed < self.duration {
                    // Clamp the final bin so sampling never extends the
                    // declared horizon: probes measure, they must not
                    // change what is simulated.
                    let remaining = self.duration - elapsed;
                    let step = if remaining < bin { remaining } else { bin };
                    world.world.sim.run_for(step);
                    elapsed = elapsed + step;
                    store.time_s.push(world.world.sim.now().as_secs_f64());
                    for (probe, (_, values)) in sampled.iter_mut().zip(&mut store.series) {
                        values.push((probe.sample)(&world));
                    }
                }
            }
        }

        let mut metrics = Params::new();
        for probe in end {
            probe(&world, &mut metrics);
        }
        for summarize in summarizers {
            summarize(&store, &mut metrics);
        }
        if !store.time_s.is_empty() && sampled.iter().any(|p| p.emit) {
            metrics.set("_series_time_s", store.time_s.clone());
            for (probe, (name, values)) in sampled.iter().zip(&store.series) {
                if probe.emit {
                    metrics.set(name, values.clone());
                }
            }
        }
        Outcome::new(metrics).with_events(world.world.sim.dispatched_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Role;
    use crate::workload::{HostSel, TargetSel};
    use aitf_core::HostPolicy;

    fn flood_scenario() -> Scenario {
        Scenario::new(TopologySpec::fig1(HostPolicy::Malicious))
            .duration(SimDuration::from_secs(3))
            .traffic(TrafficSpec::flood(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                500,
                500,
            ))
    }

    #[test]
    fn run_reports_probe_metrics_in_declaration_order() {
        let outcome = flood_scenario()
            .probes(
                ProbeSet::new()
                    .leak_ratio("leak_r")
                    .end(|w, m| m.set("filters", w.world.router(w.net("B_net")).filters().len())),
            )
            .run(11);
        let names: Vec<&str> = outcome.metrics.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["leak_r", "filters"]);
        assert!(outcome.events > 0);
    }

    #[test]
    fn identical_scenarios_are_bit_identical() {
        let probe = || ProbeSet::new().leak_ratio("leak_r");
        let a = flood_scenario().probes(probe()).run(5);
        let b = flood_scenario().probes(probe()).run(5);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn sampled_probes_accumulate_series_and_summaries() {
        let bin = SimDuration::from_millis(500);
        let outcome = flood_scenario()
            .probes(
                ProbeSet::new()
                    .bin(bin)
                    .sampled_filter_occupancy("_series_bnet_filters", "B_net", true)
                    .time_to_block("t_block_s", "_series_bnet_filters", 0.0),
            )
            .run(9);
        let series = outcome.metrics.f64_list("_series_bnet_filters");
        assert_eq!(series.len(), 6, "3 s / 500 ms bins");
        assert_eq!(
            outcome.metrics.f64_list("_series_time_s").len(),
            series.len()
        );
        // The flood is blocked at the attacker's gateway quickly.
        assert!(outcome.metrics.f64("t_block_s") >= 0.0);
    }

    #[test]
    fn sampling_never_extends_the_horizon() {
        // 3 s horizon, 700 ms bins: the last bin clamps to 200 ms, so the
        // sampled run simulates exactly what the unsampled one does.
        let plain = flood_scenario().run(13);
        let sampled = flood_scenario()
            .probes(ProbeSet::new().bin(SimDuration::from_millis(700)).sampled(
                "_series_zero",
                false,
                |_| 0.0,
            ))
            .run(13);
        assert_eq!(plain.events, sampled.events);
    }

    #[test]
    #[should_panic(expected = "need ProbeSet::bin")]
    fn sampled_probes_without_a_bin_fail_loudly() {
        let _ = flood_scenario()
            .probes(ProbeSet::new().sampled("_series_x", true, |_| 0.0))
            .run(1);
    }
}
