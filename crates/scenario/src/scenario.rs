//! The top-level `Scenario`: topology × workload × probes × config, run
//! end-to-end into an [`aitf_engine::Outcome`].
//!
//! A scenario is the declarative unit the experiment registry's runner
//! closures construct per sweep point:
//!
//! ```
//! use aitf_core::{AitfConfig, HostPolicy};
//! use aitf_engine::Params;
//! use aitf_netsim::SimDuration;
//! use aitf_scenario::{HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec};
//!
//! let outcome = Scenario::new(TopologySpec::fig1(HostPolicy::Malicious))
//!     .config(AitfConfig::default())
//!     .duration(SimDuration::from_secs(2))
//!     .traffic(TrafficSpec::flood(
//!         HostSel::Role(Role::Attacker),
//!         TargetSel::Victim,
//!         500,
//!         500,
//!     ))
//!     .probes(ProbeSet::new().leak_ratio("leak_r"))
//!     .run(42);
//! assert!(outcome.metrics.f64("leak_r") < 1.0);
//! assert!(outcome.events > 0);
//! ```

use aitf_core::{AitfConfig, DefensePolicy, EvictionPolicy};
use aitf_engine::{Outcome, Params};
use aitf_netsim::SimDuration;

use crate::churn::{ChurnAction, ChurnSpec};
use crate::deploy::DeploymentSpec;
use crate::probe::{ProbeSet, SeriesStore};
use crate::topology::{BuiltWorld, Role, TopologySpec};
use crate::workload::{TrafficSpec, WorkloadSpec};

/// A scenario-specification error, detected by [`Scenario::validate`]
/// before any world is built or simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// A complete declarative experiment point.
pub struct Scenario {
    /// Protocol configuration shared by every node.
    pub config: AitfConfig,
    /// The world's shape.
    pub topology: TopologySpec,
    /// Which networks participate in AITF (default: all of them).
    pub deployment: DeploymentSpec,
    /// The traffic driving it.
    pub workload: WorkloadSpec,
    /// Scheduled mid-run world mutations (empty = a static world).
    pub churn: ChurnSpec,
    /// What to measure.
    pub probes: ProbeSet,
    /// How long to simulate.
    pub duration: SimDuration,
    /// Event-loop shards the world is split into (1 = the classic
    /// single-threaded loop). Sharding is bit-transparent: any value
    /// produces identical results, larger worlds just run on more threads.
    pub shards: usize,
}

impl Scenario {
    /// A scenario over `topology` with default config, an empty workload,
    /// no probes and a 10 s horizon.
    pub fn new(topology: TopologySpec) -> Self {
        Scenario {
            config: AitfConfig::default(),
            topology,
            deployment: DeploymentSpec::full(),
            workload: WorkloadSpec::new(),
            churn: ChurnSpec::new(),
            probes: ProbeSet::new(),
            duration: SimDuration::from_secs(10),
            shards: 1,
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, cfg: AitfConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Replaces the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Appends one traffic entry.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.workload.push(spec);
        self
    }

    /// Replaces the churn timeline.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = churn;
        self
    }

    /// Appends one churn event at `at` (relative to the scenario start).
    pub fn event(mut self, at: SimDuration, action: ChurnAction) -> Self {
        self.churn.push(at, action);
        self
    }

    // ------------------------------------------------------------------
    // First-class sweep axes. Each of these is a plain field tweak —
    // they exist so the quantities of the paper's sizing formulas
    // (`r ≈ n(Td+Tr)/T`, `nv = R1·Ttmp`) are one-call sweepable from an
    // experiment's point runner.
    // ------------------------------------------------------------------

    /// Sets every border router's wire-speed filter-table capacity
    /// (§IV-B: sized `nv = R1·Ttmp` at the victim's gateway).
    pub fn filter_capacity(mut self, capacity: usize) -> Self {
        self.config.filter_capacity = capacity;
        self
    }

    /// Sets every border router's DRAM shadow-cache capacity (§IV-B:
    /// sized `mv = R1·T`).
    pub fn shadow_capacity(mut self, capacity: usize) -> Self {
        self.config.shadow_capacity = capacity;
        self
    }

    /// Sets what a full filter table does.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction = policy;
        self
    }

    /// Sets `Td`, the victim's detection delay for a new undesired flow.
    pub fn td(mut self, td: SimDuration) -> Self {
        self.config.detection_delay = td;
        self
    }

    /// Sets the deployment dimension: which networks participate in AITF
    /// (§III — the partial-deployment incentive E16 sweeps).
    pub fn deployment(mut self, deployment: DeploymentSpec) -> Self {
        self.deployment = deployment;
        self
    }

    /// First-class sweep axis over [`DeploymentSpec::fraction`]: this
    /// seed-derived fraction of the eligible networks runs AITF, nested
    /// across fractions for a fixed seed.
    pub fn aitf_fraction(self, fraction: f64) -> Self {
        self.deployment(DeploymentSpec::fraction(fraction))
    }

    /// Sets `Tr`, the one-way victim→gateway delay, by rewriting the
    /// victim host's tail-circuit propagation delay (bandwidth and queue
    /// are untouched).
    ///
    /// # Panics
    ///
    /// Panics if the topology declares no [`Role::Victim`] host.
    pub fn tr(mut self, tr: SimDuration) -> Self {
        let i = self
            .topology
            .hosts
            .iter()
            .position(|h| h.role == Role::Victim)
            .expect("tr() needs a Role::Victim host in the topology");
        self.topology.hosts[i].link.delay = tr;
        self
    }

    /// Sets the probe set.
    pub fn probes(mut self, probes: ProbeSet) -> Self {
        self.probes = probes;
        self
    }

    /// Sets the simulated horizon.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Selects the defense policy every border router runs — the N-way
    /// bake-off axis (AITF, hop-by-hop pushback, ingress rate-limiting,
    /// capability-style path stamping).
    pub fn defense(mut self, policy: DefensePolicy) -> Self {
        self.config.defense = policy;
        self
    }

    /// Splits the event loop into (at most) `shards` conservative-lookahead
    /// shards along the network tree (see
    /// [`aitf_netsim::Simulator::apply_shards`]). Results are bit-identical
    /// at any shard count; 1 (the default) keeps the classic loop.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Checks the scenario for specification errors before anything is
    /// built or simulated. Currently validated:
    ///
    /// - every churn event must fire strictly before the scenario horizon
    ///   — an event at or past it could never take effect, and a silent
    ///   no-op would masquerade as "the late wave changed nothing";
    /// - a sample bin, when set, must be positive and no larger than the
    ///   horizon — a zero bin would spin forever without advancing the
    ///   clock, and a bin past the horizon would silently clamp to a
    ///   single end-of-run sample, turning "per-bin series" into one
    ///   point without complaint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if let Some(event) = self.churn.events.iter().find(|e| e.at >= self.duration) {
            return Err(ScenarioError(format!(
                "churn event {:?} at {:?} is at or past the scenario horizon \
                 {:?}; events must fire strictly before the horizon",
                event.action, event.at, self.duration
            )));
        }
        if let Some(bin) = self.probes.sample_bin {
            if bin == SimDuration::ZERO {
                return Err(ScenarioError(
                    "sample bin is zero: the sampling loop could never \
                     advance the clock; ProbeSet::bin needs a positive \
                     duration"
                        .into(),
                ));
            }
            if bin > self.duration {
                return Err(ScenarioError(format!(
                    "sample bin {:?} is larger than the scenario horizon \
                     {:?}; a per-bin series needs at least one full bin",
                    bin, self.duration
                )));
            }
        }
        Ok(())
    }

    /// Builds the world and installs the workload without running it —
    /// the escape hatch for experiments that drive the simulation in
    /// custom phases (mid-run snapshots, incremental sampling). The
    /// deployment spec is applied first, so non-participating networks
    /// are legacy from the moment their routers exist.
    pub fn build(&self, seed: u64) -> BuiltWorld {
        let cfg = self.config.clone();
        let mut world = if self.deployment.is_full() {
            self.topology.build(seed, cfg)
        } else {
            self.deployment.apply(&self.topology, seed).build(seed, cfg)
        };
        self.workload.compile(&mut world);
        if self.shards > 1 {
            let hints = world.world.shard_hints();
            world
                .world
                .sim
                .apply_shards(self.shards, &hints)
                .expect("world shard partition");
        }
        world
    }

    /// Builds, runs and measures the scenario: the declarative path from
    /// spec to [`Outcome`]. Metrics appear in probe declaration order
    /// (end probes, summarizers, then emitted series); the simulator's
    /// dispatched-event count is attached for the engine's telemetry.
    ///
    /// Churn events fire at their declared virtual times, between event-
    /// loop segments: the run advances to the earlier of the next sample
    /// boundary and the next churn instant, samples (if at a boundary —
    /// a sample coinciding with churn reads the pre-mutation world), then
    /// applies every event due at that instant in declaration order.
    /// Events at `t = 0` apply before the simulation starts.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] rejects the spec — e.g. a churn
    /// event scheduled at or past the scenario duration: no simulated
    /// time would remain for it to take effect, and probes and churn
    /// must not extend the declared horizon.
    pub fn run(self, seed: u64) -> Outcome {
        if let Err(e) = self.validate() {
            panic!("invalid scenario: {e}");
        }
        let mut world = self.build(seed);
        let ProbeSet {
            setup,
            end,
            sample_bin,
            mut sampled,
            summarizers,
        } = self.probes;
        // Setup hooks (streaming taps) install before any simulated
        // event, including churn scheduled at t = 0.
        for hook in setup {
            hook(&mut world);
        }
        if sample_bin.is_none() {
            assert!(
                sampled.is_empty() && summarizers.is_empty(),
                "sampled probes/summarizers need ProbeSet::bin"
            );
        }

        let mut store = SeriesStore::default();
        for probe in &sampled {
            store.series.push((probe.name, Vec::new()));
        }
        // The horizon check ran in `validate` above, before the world was
        // built — a bad spec fails at compile time, not mid-run.
        let schedule = self.churn.into_schedule();
        let mut churn = schedule.into_iter().peekable();
        let mut elapsed = SimDuration::ZERO;
        let mut next_sample = sample_bin.map(|bin| {
            if bin < self.duration {
                bin
            } else {
                self.duration
            }
        });
        loop {
            // Apply every event due at the current instant, in declaration
            // order (events at ZERO run before the simulation starts, so
            // hosts detached at zero begin the run offline).
            while churn.peek().is_some_and(|e| e.at <= elapsed) {
                let event = churn.next().expect("peeked event exists");
                assert!(
                    event.at == elapsed,
                    "churn schedule fell behind the clock (event at {:?}, now {:?})",
                    event.at,
                    elapsed
                );
                event.action.apply(&mut world);
            }
            if elapsed >= self.duration {
                debug_assert!(
                    churn.peek().is_none(),
                    "events validated against the horizon"
                );
                break;
            }
            // Next stop: the earlier of the next sample boundary (or the
            // horizon when not sampling) and the next churn instant. The
            // final bin clamps to the horizon either way: probes and churn
            // measure/mutate, they must not change how long is simulated.
            let sample_at = next_sample.unwrap_or(self.duration);
            let stop = match churn.peek() {
                Some(e) if e.at < sample_at => e.at,
                _ => sample_at,
            };
            world.world.sim.run_for(stop - elapsed);
            elapsed = stop;
            if Some(stop) == next_sample {
                store.time_s.push(world.world.sim.now().as_secs_f64());
                for (probe, (_, values)) in sampled.iter_mut().zip(&mut store.series) {
                    values.push((probe.sample)(&world));
                }
                next_sample = sample_bin.map(|bin| {
                    let next = stop + bin;
                    if next < self.duration {
                        next
                    } else {
                        self.duration
                    }
                });
            }
        }

        let mut metrics = Params::new();
        for probe in end {
            probe(&world, &mut metrics);
        }
        for summarize in summarizers {
            summarize(&store, &mut metrics);
        }
        if !store.time_s.is_empty() && sampled.iter().any(|p| p.emit) {
            metrics.set("_series_time_s", store.time_s.clone());
            for (probe, (name, values)) in sampled.iter().zip(&store.series) {
                if probe.emit {
                    metrics.set(name, values.clone());
                }
            }
        }
        let outcome = Outcome::new(metrics).with_events(world.world.sim.dispatched_events());
        // Label non-default policies only: AITF records keep their
        // historical JSON shape byte-for-byte.
        let outcome = match self.config.defense {
            DefensePolicy::Aitf => outcome,
            other => outcome.with_defense(other.name()),
        };
        #[cfg(feature = "trace")]
        let outcome = outcome.with_trace(aitf_trace::TraceReport {
            subsystems: world.world.sim.subsystem_profile(),
            spans: world.world.trace_spans(),
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Role;
    use crate::workload::{HostSel, TargetSel};
    use aitf_core::HostPolicy;

    fn flood_scenario() -> Scenario {
        Scenario::new(TopologySpec::fig1(HostPolicy::Malicious))
            .duration(SimDuration::from_secs(3))
            .traffic(TrafficSpec::flood(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                500,
                500,
            ))
    }

    #[test]
    fn run_reports_probe_metrics_in_declaration_order() {
        let outcome = flood_scenario()
            .probes(
                ProbeSet::new()
                    .leak_ratio("leak_r")
                    .end(|w, m| m.set("filters", w.world.router(w.net("B_net")).filters().len())),
            )
            .run(11);
        let names: Vec<&str> = outcome.metrics.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["leak_r", "filters"]);
        assert!(outcome.events > 0);
    }

    #[test]
    fn identical_scenarios_are_bit_identical() {
        let probe = || ProbeSet::new().leak_ratio("leak_r");
        let a = flood_scenario().probes(probe()).run(5);
        let b = flood_scenario().probes(probe()).run(5);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn sampled_probes_accumulate_series_and_summaries() {
        let bin = SimDuration::from_millis(500);
        let outcome = flood_scenario()
            .probes(
                ProbeSet::new()
                    .bin(bin)
                    .sampled_filter_occupancy("_series_bnet_filters", "B_net", true)
                    .time_to_block("t_block_s", "_series_bnet_filters", 0.0),
            )
            .run(9);
        let series = outcome.metrics.f64_list("_series_bnet_filters");
        assert_eq!(series.len(), 6, "3 s / 500 ms bins");
        assert_eq!(
            outcome.metrics.f64_list("_series_time_s").len(),
            series.len()
        );
        // The flood is blocked at the attacker's gateway quickly.
        assert!(outcome.metrics.f64("t_block_s") >= 0.0);
    }

    #[test]
    fn sampling_never_extends_the_horizon() {
        // 3 s horizon, 700 ms bins: the last bin clamps to 200 ms, so the
        // sampled run simulates exactly what the unsampled one does.
        let plain = flood_scenario().run(13);
        let sampled = flood_scenario()
            .probes(ProbeSet::new().bin(SimDuration::from_millis(700)).sampled(
                "_series_zero",
                false,
                |_| 0.0,
            ))
            .run(13);
        assert_eq!(plain.events, sampled.events);
    }

    #[test]
    fn streaming_victim_probe_matches_exact_counters() {
        use crate::probe::{StreamProbeConfig, VictimStreamTap};
        let run = |cfg: StreamProbeConfig| {
            flood_scenario()
                .probes(ProbeSet::new().streaming_victim(cfg).end(|w, m| {
                    let c = w.world.host(w.victim()).counters();
                    m.set("exact_pkts", c.rx_attack_pkts + c.rx_legit_pkts);
                    m.set("exact_attack", c.rx_attack_pkts);
                    let tap = w
                        .world
                        .host(w.victim())
                        .rx_tap()
                        .and_then(|t| t.as_any().downcast_ref::<VictimStreamTap>())
                        .expect("tap installed");
                    m.set("tap_pkts", tap.total_pkts());
                    m.set("tap_attack", tap.total_attack_pkts());
                }))
                .run(21)
        };
        let outcome = run(StreamProbeConfig::default());
        // The sketch totals are exact — only per-key estimates carry
        // error — so the tap must agree with the victim's counters.
        assert_eq!(
            outcome.metrics.u64("tap_pkts"),
            outcome.metrics.u64("exact_pkts")
        );
        assert_eq!(
            outcome.metrics.u64("tap_attack"),
            outcome.metrics.u64("exact_attack")
        );
        assert!(outcome.metrics.u64("exact_pkts") > 0, "flood delivered");
        // A pure flood: the heavy hitters are all attack traffic.
        assert!(outcome.metrics.f64("hh_attack_frac") > 0.9, "{outcome:?}");
        let srcs = outcome.metrics.u64_list("hh_srcs");
        let pkts = outcome.metrics.u64_list("hh_pkts");
        let attack = outcome.metrics.u64_list("hh_attack_pkts");
        assert!(!srcs.is_empty());
        assert_eq!(srcs.len(), pkts.len());
        assert_eq!(srcs.len(), attack.len());
        for (p, a) in pkts.iter().zip(attack) {
            assert!(a <= p, "shared hash layout: attack est ≤ total est");
        }
        // O(config) memory: the footprint is set by the config alone,
        // not by traffic — rerunning with the same config pins it.
        let again = run(StreamProbeConfig::default());
        assert_eq!(
            outcome.metrics.u64("probe_bytes"),
            again.metrics.u64("probe_bytes")
        );
        assert!(outcome.metrics.u64("probe_bytes") > 0);
    }

    #[test]
    #[should_panic(expected = "need ProbeSet::bin")]
    fn sampled_probes_without_a_bin_fail_loudly() {
        let _ = flood_scenario()
            .probes(ProbeSet::new().sampled("_series_x", true, |_| 0.0))
            .run(1);
    }

    // ------------------------------------------------------------------
    // Dynamic worlds.
    // ------------------------------------------------------------------

    use crate::churn::ChurnAction;
    use crate::topology::Side;

    fn churn_star() -> Scenario {
        Scenario::new(TopologySpec::star(4, 1, HostPolicy::Malicious, 10_000_000))
            .duration(SimDuration::from_secs(4))
            .traffic(TrafficSpec::flood(
                HostSel::RoleSlice(Role::Attacker, 0, 2),
                TargetSel::Victim,
                200,
                500,
            ))
    }

    #[test]
    fn detach_at_zero_keeps_hosts_offline_until_attached() {
        // Hosts 2..4 are declared but detached at t=0 and never attached:
        // they must contribute nothing, and the world must behave exactly
        // like one where they were never selected by any workload.
        let outcome = churn_star()
            .event(
                SimDuration::ZERO,
                ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 2, 2)),
            )
            .probes(
                ProbeSet::new()
                    .leak_ratio("leak_r")
                    .filters_installed_on("blocked", Side::Attacker),
            )
            .run(3);
        // Only the two flooding zombies get blocked; the detached pair
        // never sent a packet, so never triggered a filter.
        assert_eq!(outcome.metrics.u64("blocked"), 2, "{outcome:?}");
    }

    #[test]
    fn churn_wave_restarts_detection_and_recovers() {
        // Wave 1 floods from t=0; at t=2 s it retires and wave 2 (fresh
        // hosts, fresh flows) joins. Every zombie must end up blocked.
        let outcome = churn_star()
            .event(
                SimDuration::from_secs(2),
                ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 0, 2)),
            )
            .event(
                SimDuration::from_secs(2),
                ChurnAction::StartTraffic(TrafficSpec::flood(
                    HostSel::RoleSlice(Role::Attacker, 2, 2),
                    TargetSel::Victim,
                    200,
                    500,
                )),
            )
            .probes(
                ProbeSet::new()
                    .leak_ratio("leak_r")
                    .filters_installed_on("blocked", Side::Attacker),
            )
            .run(5);
        assert_eq!(outcome.metrics.u64("blocked"), 4, "{outcome:?}");
        assert!(outcome.metrics.f64("leak_r") < 0.2, "{outcome:?}");
    }

    #[test]
    fn churning_scenarios_are_bit_identical_across_runs() {
        let build = || {
            churn_star()
                .event(
                    SimDuration::from_secs(2),
                    ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 0, 2)),
                )
                .event(
                    SimDuration::from_secs(2),
                    ChurnAction::StartTraffic(TrafficSpec::flood(
                        HostSel::RoleSlice(Role::Attacker, 2, 2),
                        TargetSel::Victim,
                        200,
                        500,
                    )),
                )
                .probes(ProbeSet::new().leak_ratio("leak_r"))
        };
        let a = build().run(11);
        let b = build().run(11);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn churn_events_do_not_disturb_bin_alignment() {
        // A churn event mid-bin must split the run segment without moving
        // the sample boundaries: the series still has one sample per bin.
        let outcome = churn_star()
            .event(
                SimDuration::from_millis(700),
                ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 2, 2)),
            )
            .probes(ProbeSet::new().bin(SimDuration::from_millis(500)).sampled(
                "_series_x",
                true,
                |_| 1.0,
            ))
            .run(2);
        assert_eq!(
            outcome.metrics.f64_list("_series_x").len(),
            8,
            "4 s / 500 ms"
        );
    }

    #[test]
    #[should_panic(expected = "past the scenario horizon")]
    fn churn_past_the_horizon_fails_loudly() {
        let _ = churn_star()
            .event(
                SimDuration::from_secs(10),
                ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 0, 1)),
            )
            .run(1);
    }

    #[test]
    #[should_panic(expected = "sample bin is zero")]
    fn zero_sample_bin_fails_loudly() {
        let _ = flood_scenario()
            .probes(
                ProbeSet::new()
                    .bin(SimDuration::ZERO)
                    .sampled("_series_x", false, |_| 0.0),
            )
            .run(1);
    }

    #[test]
    fn validate_rejects_sample_bins_past_the_horizon() {
        // 3 s horizon, 5 s bin: would silently clamp to one end sample.
        let bad = flood_scenario().probes(ProbeSet::new().bin(SimDuration::from_secs(5)).sampled(
            "_series_x",
            false,
            |_| 0.0,
        ));
        let err = bad.validate().expect_err("bin past horizon").to_string();
        assert!(err.contains("5s"), "names the bin: {err}");
        assert!(err.contains("3s"), "names the horizon: {err}");
        // A bin equal to the horizon is one full bin — still legal.
        let edge = flood_scenario().probes(ProbeSet::new().bin(SimDuration::from_secs(3)).sampled(
            "_series_x",
            false,
            |_| 0.0,
        ));
        assert!(edge.validate().is_ok());
    }

    #[test]
    fn validate_names_the_offending_event_and_the_horizon() {
        let bad = churn_star().event(
            SimDuration::from_secs(10),
            ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 0, 1)),
        );
        let err = bad.validate().expect_err("event past horizon").to_string();
        assert!(err.contains("Detach"), "names the action: {err}");
        assert!(err.contains("10s"), "names the event time: {err}");
        assert!(err.contains("4s"), "names the horizon: {err}");
        assert!(churn_star().validate().is_ok());
    }

    // ------------------------------------------------------------------
    // Partial deployment & provider churn.
    // ------------------------------------------------------------------

    use crate::topology::NetSel;
    use aitf_core::RouterPolicy;

    #[test]
    fn set_router_policy_event_flips_a_provider_mid_run() {
        let outcome = churn_star()
            .event(
                SimDuration::from_secs(1),
                ChurnAction::SetRouterPolicy(
                    NetSel::Name("zombie_net_0".into()),
                    RouterPolicy::legacy(),
                ),
            )
            .probes(ProbeSet::new().leak_ratio("leak_r").end(|w, m| {
                m.set(
                    "z0_aitf",
                    w.world.router_policy(w.net("zombie_net_0")).aitf_enabled,
                );
                m.set("hub_aitf", w.world.router_policy(w.net("hub")).aitf_enabled);
            }))
            .run(5);
        assert!(!outcome.metrics.bool("z0_aitf"));
        assert!(outcome.metrics.bool("hub_aitf"));
    }

    #[test]
    fn deployment_spec_builds_legacy_routers_from_the_start() {
        let outcome = churn_star()
            .deployment(crate::deploy::DeploymentSpec::legacy_nets(["zombie_net_1"]))
            .probes(ProbeSet::new().end(|w, m| {
                let aitf = (0..w.world.net_count())
                    .filter(|&i| w.world.router_policy(aitf_core::NetId(i)).aitf_enabled)
                    .count();
                m.set("aitf_nets", aitf as u64);
            }))
            .run(5);
        // star(4, ..): hub + victim_net + 4 zombie nets = 6, one legacy.
        assert_eq!(outcome.metrics.u64("aitf_nets"), 5);
    }
}
