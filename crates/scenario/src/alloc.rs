//! Deterministic allocation of non-overlapping /16 network prefixes.
//!
//! Scenario generators hand every AD a fresh /16; the allocator's sequence
//! is part of a scenario's identity (addresses feed routing, flow labels
//! and therefore results), so it is fixed forever: allocation `i` is
//! `(10 + i/250).(i%250 + 1).0.0/16`. The first 12,500 allocations are
//! identical to the historical `aitf_attack::scenarios::PrefixAlloc`
//! sequence; the bound is now an explicit, checked [`PrefixAlloc::CAPACITY`]
//! (60,000 networks) instead of an undocumented panic, which is what lets
//! star/tree scenarios grow zombie armies far past 64 nets.

use aitf_packet::{Addr, Prefix};

/// Deterministic allocator of non-overlapping /16 prefixes.
///
/// # Examples
///
/// ```
/// use aitf_scenario::PrefixAlloc;
///
/// let mut alloc = PrefixAlloc::new();
/// assert_eq!(alloc.next_slash16().to_string(), "10.1.0.0/16");
/// assert_eq!(alloc.next_slash16().to_string(), "10.2.0.0/16");
/// assert_eq!(alloc.remaining(), PrefixAlloc::CAPACITY - 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PrefixAlloc {
    next: u32,
}

impl PrefixAlloc {
    /// Total number of /16s the allocator can hand out: first octets
    /// 10..=249 with 250 second octets each. The address space is purely
    /// simulated, so reserved real-world ranges need no carve-outs.
    pub const CAPACITY: u32 = 240 * 250;

    /// Creates an allocator starting at `10.1.0.0/16`.
    pub fn new() -> Self {
        PrefixAlloc { next: 0 }
    }

    /// Creates an allocator that has already skipped the first `offset`
    /// prefixes — for tests probing the capacity boundary and for sharded
    /// world construction.
    pub fn with_offset(offset: u32) -> Self {
        PrefixAlloc { next: offset }
    }

    /// Number of /16s still available.
    pub fn remaining(&self) -> u32 {
        Self::CAPACITY.saturating_sub(self.next)
    }

    /// Returns the next free /16, or `None` once [`Self::CAPACITY`] is
    /// exhausted.
    pub fn try_next_slash16(&mut self) -> Option<Prefix> {
        if self.next >= Self::CAPACITY {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let a = 10 + (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        Some(Prefix::new(Addr::new(a, b, 0, 0), 16))
    }

    /// Returns the next free /16.
    ///
    /// # Panics
    ///
    /// Panics once all [`Self::CAPACITY`] prefixes are spent.
    pub fn next_slash16(&mut self) -> Prefix {
        self.try_next_slash16().unwrap_or_else(|| {
            panic!(
                "prefix space exhausted: PrefixAlloc::CAPACITY = {} /16s",
                Self::CAPACITY
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_matches_the_historical_allocator() {
        // The first allocations must stay what `aitf_attack::scenarios`
        // always produced: 10.1, 10.2, ..., 10.250, 11.1, ...
        let mut alloc = PrefixAlloc::new();
        assert_eq!(alloc.next_slash16().to_string(), "10.1.0.0/16");
        for _ in 1..249 {
            alloc.next_slash16();
        }
        assert_eq!(alloc.next_slash16().to_string(), "10.250.0.0/16");
        assert_eq!(alloc.next_slash16().to_string(), "11.1.0.0/16");
    }

    #[test]
    fn never_overlaps_across_a_large_run() {
        let mut alloc = PrefixAlloc::new();
        let mut seen = Vec::new();
        // Far past the old ~12k ceiling's first octet rollover points.
        for _ in 0..600 {
            let p = alloc.next_slash16();
            for q in &seen {
                assert!(!p.overlaps(*q), "{p} overlaps {q}");
            }
            seen.push(p);
        }
    }

    #[test]
    fn capacity_boundary_is_checked() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY - 1);
        assert_eq!(alloc.remaining(), 1);
        let last = alloc.try_next_slash16().expect("one prefix left");
        assert_eq!(last.to_string(), "249.250.0.0/16");
        assert_eq!(alloc.remaining(), 0);
        assert!(alloc.try_next_slash16().is_none());
    }

    #[test]
    #[should_panic(expected = "prefix space exhausted")]
    fn exhaustion_panics_with_the_documented_capacity() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY);
        let _ = alloc.next_slash16();
    }
}
