//! Deterministic allocation of non-overlapping /16 network prefixes.
//!
//! Scenario generators hand every AD a fresh /16; the allocator's sequence
//! is part of a scenario's identity (addresses feed routing, flow labels
//! and therefore results), so it is fixed forever: allocation `i` is
//! `(10 + i/250).(i%250 + 1).0.0/16`. The first 12,500 allocations are
//! identical to the historical `aitf_attack::scenarios::PrefixAlloc`
//! sequence; the bound is now an explicit, checked [`PrefixAlloc::CAPACITY`]
//! (60,000 networks) instead of an undocumented panic, which is what lets
//! star/tree scenarios grow zombie armies far past 64 nets.

use aitf_packet::{Addr, Prefix};

/// Deterministic allocator of non-overlapping /16 prefixes.
///
/// # Examples
///
/// ```
/// use aitf_scenario::PrefixAlloc;
///
/// let mut alloc = PrefixAlloc::new();
/// assert_eq!(alloc.next_slash16().to_string(), "10.1.0.0/16");
/// assert_eq!(alloc.next_slash16().to_string(), "10.2.0.0/16");
/// assert_eq!(alloc.remaining(), PrefixAlloc::CAPACITY - 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PrefixAlloc {
    next: u32,
    /// A partially-carved /16 (its sequence index) and the next /24 slot
    /// inside it — see [`PrefixAlloc::next_slash24`].
    carving: Option<(u32, u16)>,
}

impl PrefixAlloc {
    /// Total number of /16s the allocator can hand out: first octets
    /// 10..=249 with 250 second octets each. The address space is purely
    /// simulated, so reserved real-world ranges need no carve-outs.
    pub const CAPACITY: u32 = 240 * 250;

    /// Total number of /24s available when every /16 is carved:
    /// [`Self::CAPACITY`] × 256 ≈ 15.36M — the 1M-net regime's headroom.
    pub const CAPACITY_SLASH24: u64 = Self::CAPACITY as u64 * 256;

    /// Creates an allocator starting at `10.1.0.0/16`.
    pub fn new() -> Self {
        PrefixAlloc {
            next: 0,
            carving: None,
        }
    }

    /// Creates an allocator that has already skipped the first `offset`
    /// prefixes — for tests probing the capacity boundary and for sharded
    /// world construction.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`Self::CAPACITY`] — an offset past the
    /// end would silently hand out zero prefixes, which at 100k-net scale
    /// reads as a mysteriously empty world rather than the configuration
    /// bug it is.
    pub fn with_offset(offset: u32) -> Self {
        assert!(
            offset <= Self::CAPACITY,
            "PrefixAlloc::with_offset({offset}) past the end: only {} /16s exist",
            Self::CAPACITY
        );
        PrefixAlloc {
            next: offset,
            carving: None,
        }
    }

    /// Number of /16s still available.
    pub fn remaining(&self) -> u32 {
        Self::CAPACITY.saturating_sub(self.next)
    }

    /// Returns the next free /16, or `None` once [`Self::CAPACITY`] is
    /// exhausted.
    pub fn try_next_slash16(&mut self) -> Option<Prefix> {
        if self.next >= Self::CAPACITY {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let a = 10 + (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        Some(Prefix::new(Addr::new(a, b, 0, 0), 16))
    }

    /// Returns the next free /16.
    ///
    /// # Panics
    ///
    /// Panics once all [`Self::CAPACITY`] prefixes are spent.
    pub fn next_slash16(&mut self) -> Prefix {
        self.try_next_slash16().unwrap_or_else(|| {
            panic!(
                "prefix space exhausted: PrefixAlloc::CAPACITY = {} /16s",
                Self::CAPACITY
            )
        })
    }

    /// Number of /24s still available (256 per remaining /16, plus the
    /// tail of any partially-carved one).
    pub fn remaining_slash24(&self) -> u64 {
        let partial = self.carving.map_or(0, |(_, j)| 256 - j as u64);
        self.remaining() as u64 * 256 + partial
    }

    /// Returns the next free /24, or `None` when the space is exhausted.
    ///
    /// /24s are carved 256 at a time out of /16s drawn from the *same*
    /// counter as [`Self::next_slash16`], so interleaved /16 and /24
    /// requests can never overlap: carved /16 `i` yields
    /// `(10 + i/250).(i%250 + 1).j.0/24` for `j` in `0..256`. A /24 still
    /// holds the standard router slot (`.254`) plus 250 host slots, so
    /// host addressing is unchanged — the win is 256× more networks from
    /// the same fixed address plan.
    pub fn try_next_slash24(&mut self) -> Option<Prefix> {
        let (i, j) = match self.carving {
            Some(cur) => cur,
            None => {
                if self.next >= Self::CAPACITY {
                    return None;
                }
                let i = self.next;
                self.next += 1;
                (i, 0)
            }
        };
        self.carving = if j + 1 < 256 { Some((i, j + 1)) } else { None };
        let a = 10 + (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        Some(Prefix::new(Addr::new(a, b, j as u8, 0), 24))
    }

    /// Returns the next free /24.
    ///
    /// # Panics
    ///
    /// Panics on exhaustion, naming the total /24 capacity.
    pub fn next_slash24(&mut self) -> Prefix {
        self.try_next_slash24().unwrap_or_else(|| {
            panic!(
                "prefix space exhausted: PrefixAlloc::CAPACITY_SLASH24 = {} /24s",
                Self::CAPACITY_SLASH24
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_matches_the_historical_allocator() {
        // The first allocations must stay what `aitf_attack::scenarios`
        // always produced: 10.1, 10.2, ..., 10.250, 11.1, ...
        let mut alloc = PrefixAlloc::new();
        assert_eq!(alloc.next_slash16().to_string(), "10.1.0.0/16");
        for _ in 1..249 {
            alloc.next_slash16();
        }
        assert_eq!(alloc.next_slash16().to_string(), "10.250.0.0/16");
        assert_eq!(alloc.next_slash16().to_string(), "11.1.0.0/16");
    }

    #[test]
    fn never_overlaps_across_a_large_run() {
        let mut alloc = PrefixAlloc::new();
        let mut seen = Vec::new();
        // Far past the old ~12k ceiling's first octet rollover points.
        for _ in 0..600 {
            let p = alloc.next_slash16();
            for q in &seen {
                assert!(!p.overlaps(*q), "{p} overlaps {q}");
            }
            seen.push(p);
        }
    }

    #[test]
    fn capacity_boundary_is_checked() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY - 1);
        assert_eq!(alloc.remaining(), 1);
        let last = alloc.try_next_slash16().expect("one prefix left");
        assert_eq!(last.to_string(), "249.250.0.0/16");
        assert_eq!(alloc.remaining(), 0);
        assert!(alloc.try_next_slash16().is_none());
    }

    #[test]
    #[should_panic(expected = "prefix space exhausted")]
    fn exhaustion_panics_with_the_documented_capacity() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY);
        let _ = alloc.next_slash16();
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn offsets_past_capacity_are_rejected() {
        let _ = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY + 1);
    }

    #[test]
    fn slash24s_carve_in_sequence_and_never_overlap_slash16s() {
        let mut alloc = PrefixAlloc::new();
        // Interleave: one /16, then /24s — the /24s must come from the
        // *next* counter slot, never out of the handed-out /16.
        let whole = alloc.next_slash16();
        assert_eq!(whole.to_string(), "10.1.0.0/16");
        let first = alloc.next_slash24();
        assert_eq!(first.to_string(), "10.2.0.0/24");
        assert_eq!(alloc.next_slash24().to_string(), "10.2.1.0/24");
        assert!(!whole.overlaps(first), "carved /24 inside a handed-out /16");
        // Finish the carve: slot 255 is the last, then a fresh /16 starts.
        for _ in 2..256 {
            alloc.next_slash24();
        }
        assert_eq!(alloc.next_slash24().to_string(), "10.3.0.0/24");
        // A /16 drawn mid-carve skips the partially-carved block entirely.
        let next16 = alloc.next_slash16();
        assert_eq!(next16.to_string(), "10.4.0.0/16");
        assert!(!next16.overlaps(Prefix::new(Addr::new(10, 3, 0, 0), 24)));
    }

    #[test]
    fn slash24_capacity_is_counted() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY - 1);
        assert_eq!(alloc.remaining_slash24(), 256);
        for _ in 0..256 {
            alloc.next_slash24();
        }
        assert_eq!(alloc.remaining_slash24(), 0);
        assert!(alloc.try_next_slash24().is_none());
        assert!(alloc.try_next_slash16().is_none());
    }

    #[test]
    #[should_panic(expected = "/24s")]
    fn slash24_exhaustion_names_the_capacity() {
        let mut alloc = PrefixAlloc::with_offset(PrefixAlloc::CAPACITY);
        let _ = alloc.next_slash24();
    }
}
