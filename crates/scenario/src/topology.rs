//! Declarative topologies: a `TopologySpec` is plain data describing the
//! networks, hosts and peerings of an AITF world, plus generators for the
//! canned shapes the paper's evaluation uses.
//!
//! - [`TopologySpec::fig1`] — the paper's Figure 1 path: two three-level
//!   provider hierarchies peered at the top, one victim, one attacker.
//! - [`TopologySpec::chain_pair`] — the same shape with configurable
//!   depth, for the escalation and pushback comparisons.
//! - [`TopologySpec::star`] — one victim network plus `M` attacker
//!   networks around a hub, for capacity and scaling experiments.
//! - [`TopologySpec::tree`] — a multi-level provider tree whose leaves
//!   host the zombies; `tree(1, m, h, ..)` is exactly `star(m, h, ..)`
//!   with one intermediate level added per extra level.
//!
//! Because the spec is data, experiments tweak it declaratively (flip a
//! router policy by name, make the last spoke host a legitimate client)
//! instead of re-rolling `WorldBuilder` calls; [`TopologySpec::build`]
//! lowers it onto [`aitf_core::WorldBuilder`] in one canonical order, so
//! two specs with equal data produce bit-identical worlds.

use aitf_core::{
    AitfConfig, HostId, HostPolicy, NetId, RouterPolicy, RoutingMode, World, WorldBuilder,
};
use aitf_engine::splitmix;
use aitf_netsim::{LinkParams, SimDuration};

use crate::alloc::PrefixAlloc;

/// What a host is *for* in the scenario — workload compilation and probes
/// select hosts by role, independent of the host's protocol
/// [`HostPolicy`] (a compliant zombie is still [`Role::Attacker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The flood's target (and legitimate traffic's server).
    Victim,
    /// A source of undesired traffic (zombie, spoofer, forger).
    Attacker,
    /// A source of legitimate foreground traffic.
    Legit,
    /// Anything else (observers, idle hosts).
    Aux,
}

/// Which side of the conflict a network sits on — probes aggregate
/// filter/request counters over a side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Core / transit ADs (hubs, mid-tree providers).
    Neutral,
    /// The victim's provider chain.
    Victim,
    /// Networks hosting attack sources.
    Attacker,
}

/// One declared network (AD).
#[derive(Debug, Clone)]
pub struct NetDecl {
    /// Display name, unique within the spec (probes look nets up by it).
    pub name: String,
    /// The network prefix, in `a.b.c.d/len` form.
    pub prefix: String,
    /// Index of the provider network in [`TopologySpec::nets`].
    pub parent: Option<usize>,
    /// Border-router behaviour.
    pub policy: RouterPolicy,
    /// Uplink parameters towards the provider.
    pub uplink: LinkParams,
    /// Conflict side, for aggregate probes.
    pub side: Side,
}

/// One declared end host.
#[derive(Debug, Clone)]
pub struct HostDecl {
    /// Index of the home network in [`TopologySpec::nets`].
    pub net: usize,
    /// Whether the host complies with filtering requests.
    pub policy: HostPolicy,
    /// Tail-circuit parameters.
    pub link: LinkParams,
    /// Scenario role, for workload/probe selection.
    pub role: Role,
}

/// One declared peering between (typically top-level) networks.
#[derive(Debug, Clone)]
pub struct PeeringDecl {
    /// First peer's index in [`TopologySpec::nets`].
    pub a: usize,
    /// Second peer's index.
    pub b: usize,
    /// Link parameters.
    pub link: LinkParams,
}

/// Parameters for [`TopologySpec::power_law`] — an AS-graph-like world
/// grown by preferential attachment.
#[derive(Debug, Clone)]
pub struct PowerLawSpec {
    /// Number of generated networks, on top of `core` and `victim_net`.
    pub n_nets: usize,
    /// Probability that a new network attaches preferentially (to a
    /// provider drawn ∝ degree) instead of uniformly. 1.0 is the classic
    /// Barabási–Albert heavy tail; 0.0 a uniform random recursive tree.
    pub skew: f64,
    /// Maximum provider-chain depth; a deeper pick is walked up its
    /// ancestors. Keeps routing state at O(n·max_depth).
    pub max_depth: usize,
    /// Fraction of networks given a peering shortcut (pairs are sampled;
    /// ancestor pairs are skipped).
    pub peering_fraction: f64,
    /// The victim's tail circuit bandwidth (bits/second).
    pub victim_tail_bps: u64,
    /// Seed for the attachment and peering draws — part of the topology's
    /// identity, independent of the run seed.
    pub seed: u64,
}

impl Default for PowerLawSpec {
    fn default() -> Self {
        PowerLawSpec {
            n_nets: 1000,
            skew: 0.75,
            max_depth: 6,
            peering_fraction: 0.01,
            victim_tail_bps: 10_000_000,
            seed: 0,
        }
    }
}

/// A declarative topology: networks × hosts × peerings as plain data.
///
/// # Examples
///
/// ```
/// use aitf_core::AitfConfig;
/// use aitf_scenario::{Role, TopologySpec};
///
/// let mut t = TopologySpec::new();
/// let wan = t.net("wan", "10.100.0.0/16", None);
/// let g = t.net("g_net", "10.1.0.0/16", Some(wan));
/// t.host(g, Role::Victim);
/// let built = t.build(42, AitfConfig::default());
/// assert_eq!(built.world.net_count(), 2);
/// assert_eq!(built.world.host_net(built.victim()), built.net("g_net"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologySpec {
    /// Declared networks, in build order.
    pub nets: Vec<NetDecl>,
    /// Declared hosts, in build order.
    pub hosts: Vec<HostDecl>,
    /// Declared peerings, in build order.
    pub peerings: Vec<PeeringDecl>,
    /// How the lowered world derives forwarding tables. The default
    /// ([`RoutingMode::AllPairs`]) keeps every existing spec bit-identical;
    /// the internet-scale generators switch to
    /// [`RoutingMode::Hierarchical`], whose build cost is O(n·depth)
    /// instead of O(n²).
    pub routing: RoutingMode,
}

impl TopologySpec {
    /// An empty spec.
    pub fn new() -> Self {
        TopologySpec::default()
    }

    /// Declares a network with the default router policy and uplink.
    pub fn net(&mut self, name: &str, prefix: &str, parent: Option<usize>) -> usize {
        self.net_with(
            name,
            prefix,
            parent,
            RouterPolicy::default(),
            WorldBuilder::default_net_link(),
            Side::Neutral,
        )
    }

    /// Declares a network with explicit policy, uplink and side.
    pub fn net_with(
        &mut self,
        name: &str,
        prefix: &str,
        parent: Option<usize>,
        policy: RouterPolicy,
        uplink: LinkParams,
        side: Side,
    ) -> usize {
        assert!(
            self.nets.iter().all(|n| n.name != name),
            "duplicate network name {name:?}"
        );
        self.nets.push(NetDecl {
            name: name.to_string(),
            prefix: prefix.to_string(),
            parent,
            policy,
            uplink,
            side,
        });
        self.nets.len() - 1
    }

    /// Declares a compliant host with the default tail circuit.
    pub fn host(&mut self, net: usize, role: Role) -> usize {
        self.host_with(
            net,
            role,
            HostPolicy::Compliant,
            WorldBuilder::default_host_link(),
        )
    }

    /// Declares a host with explicit policy and tail-circuit parameters.
    pub fn host_with(
        &mut self,
        net: usize,
        role: Role,
        policy: HostPolicy,
        link: LinkParams,
    ) -> usize {
        self.hosts.push(HostDecl {
            net,
            policy,
            link,
            role,
        });
        self.hosts.len() - 1
    }

    /// Declares a peering.
    pub fn peer(&mut self, a: usize, b: usize, link: LinkParams) {
        self.peerings.push(PeeringDecl { a, b, link });
    }

    /// Index of the network named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such network was declared.
    pub fn net_index(&self, name: &str) -> usize {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no network named {name:?} in the topology"))
    }

    /// Overrides a network's router policy, by name.
    pub fn set_net_policy(&mut self, name: &str, policy: RouterPolicy) {
        let i = self.net_index(name);
        self.nets[i].policy = policy;
    }

    /// Overrides every network's router policy (e.g. an undefended world
    /// of [`RouterPolicy::legacy`] routers).
    pub fn set_all_net_policies(&mut self, policy: RouterPolicy) {
        for n in &mut self.nets {
            n.policy = policy;
        }
    }

    // ------------------------------------------------------------------
    // Generators for the canned shapes.
    // ------------------------------------------------------------------

    /// The paper's Figure 1: `G_wan ⊃ G_isp ⊃ G_net` and
    /// `B_wan ⊃ B_isp ⊃ B_net`, peered at the top; the victim in `G_net`,
    /// the attacker in `B_net`.
    pub fn fig1(attacker_policy: HostPolicy) -> Self {
        Self::fig1_with_victim_link(attacker_policy, WorldBuilder::default_host_link())
    }

    /// [`TopologySpec::fig1`] with an explicit victim tail circuit — E2
    /// sweeps the victim→gateway delay `Tr` through it.
    pub fn fig1_with_victim_link(attacker_policy: HostPolicy, victim_link: LinkParams) -> Self {
        let mut t = TopologySpec::new();
        let d = RouterPolicy::default;
        let l = WorldBuilder::default_net_link;
        let g_wan = t.net_with("G_wan", "10.103.0.0/16", None, d(), l(), Side::Victim);
        let g_isp = t.net_with(
            "G_isp",
            "10.102.0.0/16",
            Some(g_wan),
            d(),
            l(),
            Side::Victim,
        );
        let g_net = t.net_with("G_net", "10.1.0.0/16", Some(g_isp), d(), l(), Side::Victim);
        let b_wan = t.net_with("B_wan", "10.203.0.0/16", None, d(), l(), Side::Attacker);
        let b_isp = t.net_with(
            "B_isp",
            "10.202.0.0/16",
            Some(b_wan),
            d(),
            l(),
            Side::Attacker,
        );
        let b_net = t.net_with(
            "B_net",
            "10.9.0.0/16",
            Some(b_isp),
            d(),
            l(),
            Side::Attacker,
        );
        t.peer(g_wan, b_wan, WorldBuilder::default_net_link());
        t.host_with(g_net, Role::Victim, HostPolicy::Compliant, victim_link);
        t.host_with(
            b_net,
            Role::Attacker,
            attacker_policy,
            WorldBuilder::default_host_link(),
        );
        t
    }

    /// Two provider chains of `depth` networks each, peered at the top;
    /// `depth = 3` is [`TopologySpec::fig1`]'s shape. Networks are named
    /// `G_<level>`/`B_<level>` with level 1 at the leaf; prefixes come
    /// from the [`PrefixAlloc`] sequence.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn chain_pair(depth: usize, attacker_policy: HostPolicy) -> Self {
        Self::chains(depth, attacker_policy, |side, level, alloc| {
            let tag = if side == 0 { "G" } else { "B" };
            (
                format!("{}_{}", tag, level + 1),
                alloc.next_slash16().to_string(),
            )
        })
    }

    /// [`TopologySpec::chain_pair`] with the E8 naming/prefix scheme
    /// (`<side>-<level>` over `10.{1 + 100·side + level}.0.0/16`), kept
    /// for record compatibility with the pushback comparison.
    pub fn chain_pair_by_level(depth: usize) -> Self {
        Self::chains(depth, HostPolicy::Malicious, |side, level, _| {
            (
                format!("{side}-{level}"),
                format!("10.{}.0.0/16", 1 + side * 100 + level),
            )
        })
    }

    fn chains(
        depth: usize,
        attacker_policy: HostPolicy,
        mut naming: impl FnMut(usize, usize, &mut PrefixAlloc) -> (String, String),
    ) -> Self {
        assert!(depth > 0, "depth must be at least 1");
        let mut alloc = PrefixAlloc::new();
        let mut t = TopologySpec::new();
        let mut leaves = [0usize; 2];
        let mut tops = [0usize; 2];
        for side in 0..2 {
            let s = if side == 0 {
                Side::Victim
            } else {
                Side::Attacker
            };
            let mut parent: Option<usize> = None;
            for level in (0..depth).rev() {
                let (name, prefix) = naming(side, level, &mut alloc);
                let id = t.net_with(
                    &name,
                    &prefix,
                    parent,
                    RouterPolicy::default(),
                    WorldBuilder::default_net_link(),
                    s,
                );
                if level == depth - 1 {
                    tops[side] = id;
                }
                parent = Some(id);
                leaves[side] = id;
            }
        }
        t.peer(tops[0], tops[1], WorldBuilder::default_net_link());
        t.host(leaves[0], Role::Victim);
        t.host_with(
            leaves[1],
            Role::Attacker,
            attacker_policy,
            WorldBuilder::default_host_link(),
        );
        t
    }

    /// One victim network plus `n_nets` attacker networks (named
    /// `zombie_net_<i>`, `hosts_per_net` zombies each) around a `hub` AD.
    /// The victim's tail circuit is `victim_tail_bps`; zombies get fat
    /// links so the bottleneck is the victim side, as in the paper's
    /// introduction.
    pub fn star(
        n_nets: usize,
        hosts_per_net: usize,
        zombie_policy: HostPolicy,
        victim_tail_bps: u64,
    ) -> Self {
        Self::tree(1, n_nets, hosts_per_net, zombie_policy, victim_tail_bps)
    }

    /// A multi-level provider tree: a hub AD at the root, `branching`
    /// children per node for `levels` levels, zombies only in the leaf
    /// networks. `tree(1, m, h, ..)` is exactly
    /// [`TopologySpec::star`]`(m, h, ..)` — star worlds are one-level
    /// trees — and deeper trees exercise escalation through shared
    /// intermediate providers.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or the tree needs more than
    /// [`PrefixAlloc::CAPACITY`] networks.
    pub fn tree(
        levels: usize,
        branching: usize,
        hosts_per_leaf: usize,
        zombie_policy: HostPolicy,
        victim_tail_bps: u64,
    ) -> Self {
        assert!(levels > 0, "tree needs at least one level below the hub");
        assert!(
            hosts_per_leaf <= 250,
            "tree asked for {hosts_per_leaf} hosts per leaf but a network \
             holds at most 250"
        );
        // Net count = hub + victim_net + branching + branching² + … ;
        // checked arithmetic so a silly `branching`/`levels` pair fails
        // loudly instead of wrapping into a bogus small tree.
        let mut needed: u64 = 2;
        let mut layer: u64 = 1;
        for _ in 0..levels {
            layer = layer
                .saturating_mul(branching as u64)
                .min(PrefixAlloc::CAPACITY as u64 + 1);
            needed = (needed + layer).min(PrefixAlloc::CAPACITY as u64 + 1);
        }
        assert!(
            needed <= PrefixAlloc::CAPACITY as u64,
            "tree({levels}, {branching}, ..) needs {needed}+ networks but \
             only {} /16 prefixes exist",
            PrefixAlloc::CAPACITY
        );
        let mut alloc = PrefixAlloc::new();
        let mut t = TopologySpec::new();
        let hub_prefix = alloc.next_slash16().to_string();
        let hub = t.net("hub", &hub_prefix, None);
        let victim_prefix = alloc.next_slash16().to_string();
        let victim_net = t.net_with(
            "victim_net",
            &victim_prefix,
            Some(hub),
            RouterPolicy::default(),
            WorldBuilder::default_net_link(),
            Side::Victim,
        );
        t.host_with(
            victim_net,
            Role::Victim,
            HostPolicy::Compliant,
            LinkParams::ethernet(victim_tail_bps, SimDuration::from_millis(5)),
        );
        // Leaf naming matches the historical star generator at depth 1
        // (`zombie_net_<i>`); deeper trees label intermediate providers
        // `ad_<path>` and leaves by their leaf ordinal.
        let mut leaf_ordinal = 0usize;
        let mut stack: Vec<(usize, usize, String)> = (0..branching)
            .rev()
            .map(|i| (hub, 1, i.to_string()))
            .collect();
        while let Some((parent, level, path)) = stack.pop() {
            let prefix = alloc.next_slash16().to_string();
            if level == levels {
                let name = format!("zombie_net_{leaf_ordinal}");
                leaf_ordinal += 1;
                let net = t.net_with(
                    &name,
                    &prefix,
                    Some(parent),
                    RouterPolicy::default(),
                    WorldBuilder::default_net_link(),
                    Side::Attacker,
                );
                for _ in 0..hosts_per_leaf {
                    t.host_with(
                        net,
                        Role::Attacker,
                        zombie_policy,
                        WorldBuilder::default_host_link(),
                    );
                }
            } else {
                let net = t.net(&format!("ad_{path}"), &prefix, Some(parent));
                for i in (0..branching).rev() {
                    stack.push((net, level + 1, format!("{path}_{i}")));
                }
            }
        }
        t
    }

    /// An internet-scale power-law provider graph — see [`PowerLawSpec`].
    ///
    /// The shape mimics measured AS graphs: a handful of high-degree
    /// transit providers and a long tail of stub networks, grown by
    /// preferential attachment (probability [`PowerLawSpec::skew`] of
    /// picking a parent in proportion to its degree, else uniformly),
    /// with peering shortcuts between a sampled fraction of networks.
    /// `nets[0]` is the `core` root, `nets[1]` the `victim_net` (with the
    /// victim host installed); generated networks are named `pl_<i>`.
    /// Prefixes are /24s from [`PrefixAlloc::next_slash24`] and the spec
    /// switches itself to [`RoutingMode::Hierarchical`], so a 100k-net
    /// world builds in O(n·depth) with O(n·depth) routing state.
    ///
    /// # Panics
    ///
    /// Panics if the graph needs more than
    /// [`PrefixAlloc::CAPACITY_SLASH24`] networks, naming the requested
    /// vs available count.
    pub fn power_law(spec: &PowerLawSpec) -> Self {
        let needed = spec.n_nets as u64 + 2;
        assert!(
            needed <= PrefixAlloc::CAPACITY_SLASH24,
            "power_law asked for {needed} networks but only {} /24 \
             prefixes exist",
            PrefixAlloc::CAPACITY_SLASH24
        );
        assert!(
            (0.0..=1.0).contains(&spec.skew),
            "skew is a probability, got {}",
            spec.skew
        );
        assert!(spec.max_depth >= 1, "max_depth must be at least 1");
        let mut alloc = PrefixAlloc::new();
        let mut t = TopologySpec::new();
        t.routing = RoutingMode::Hierarchical;
        let core_prefix = alloc.next_slash24().to_string();
        let core = t.net("core", &core_prefix, None);
        let victim_prefix = alloc.next_slash24().to_string();
        let victim_net = t.net_with(
            "victim_net",
            &victim_prefix,
            Some(core),
            RouterPolicy::default(),
            WorldBuilder::default_net_link(),
            Side::Victim,
        );
        t.host_with(
            victim_net,
            Role::Victim,
            HostPolicy::Compliant,
            LinkParams::ethernet(spec.victim_tail_bps, SimDuration::from_millis(5)),
        );

        // Preferential attachment over the *endpoints list*: every edge
        // pushes both its endpoints, so drawing uniformly from the list is
        // drawing a net in proportion to its degree — O(1) per draw, the
        // classic Barabási–Albert trick. Depth is capped by walking a too-
        // deep pick up its provider chain.
        let mut rng = splitmix(spec.seed ^ 0xA5_0000_0001);
        let mut endpoints: Vec<u32> = vec![core as u32, victim_net as u32];
        let mut depth: Vec<u32> = vec![0, 1];
        let mut parent_of: Vec<u32> = vec![0, 0];
        for i in 0..spec.n_nets {
            rng = splitmix(rng);
            let preferential = (rng >> 32) as f64 / (1u64 << 32) as f64 <= spec.skew;
            rng = splitmix(rng);
            let mut parent = if preferential {
                endpoints[(rng % endpoints.len() as u64) as usize] as usize
            } else {
                (rng % t.nets.len() as u64) as usize
            };
            while depth[parent] as usize >= spec.max_depth {
                parent = parent_of[parent] as usize;
            }
            let prefix = alloc.next_slash24().to_string();
            // Direct push: `net_with`'s duplicate-name scan is O(n) per
            // net and the generated names are unique by construction.
            t.nets.push(NetDecl {
                name: format!("pl_{i}"),
                prefix,
                parent: Some(parent),
                policy: RouterPolicy::default(),
                uplink: WorldBuilder::default_net_link(),
                side: Side::Neutral,
            });
            let id = (t.nets.len() - 1) as u32;
            depth.push(depth[parent] + 1);
            parent_of.push(parent as u32);
            endpoints.push(parent as u32);
            endpoints.push(id);
        }

        // Peering shortcuts between sampled pairs — skipped when one pick
        // is the other's ancestor (the tree already routes that pair, and
        // hierarchical mode must not shadow subtree routes).
        let n_peerings = (spec.n_nets as f64 * spec.peering_fraction) as usize;
        let is_ancestor = |a: usize, b: usize, depth: &[u32], parent_of: &[u32]| {
            let mut cur = b;
            while depth[cur] > depth[a] {
                cur = parent_of[cur] as usize;
            }
            cur == a
        };
        for _ in 0..n_peerings {
            rng = splitmix(rng);
            let a = (rng % t.nets.len() as u64) as usize;
            rng = splitmix(rng);
            let b = (rng % t.nets.len() as u64) as usize;
            if a == b
                || is_ancestor(a, b, &depth, &parent_of)
                || is_ancestor(b, a, &depth, &parent_of)
            {
                continue;
            }
            t.peer(a, b, WorldBuilder::default_net_link());
        }
        t
    }

    /// Scatters `count` hosts with one role/policy over the networks in
    /// `nets` (indices into [`TopologySpec::nets`]), deterministically
    /// from `seed`. A full network (250 hosts) overflows to the next
    /// index, so the call never violates the per-network host cap.
    ///
    /// # Panics
    ///
    /// Panics if the selected networks cannot hold `count` more hosts,
    /// naming the requested vs available count.
    pub fn scatter_hosts(
        &mut self,
        nets: std::ops::Range<usize>,
        count: usize,
        role: Role,
        policy: HostPolicy,
        link: LinkParams,
        seed: u64,
    ) -> Vec<usize> {
        let candidates: Vec<usize> = nets.collect();
        let mut load: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for h in &self.hosts {
            *load.entry(h.net).or_insert(0) += 1;
        }
        let available: u64 = candidates
            .iter()
            .map(|&n| 250u64.saturating_sub(load.get(&n).copied().unwrap_or(0) as u64))
            .sum();
        assert!(
            count as u64 <= available,
            "scatter_hosts asked for {count} hosts but the {} selected \
             networks only hold {available} more",
            candidates.len()
        );
        let mut rng = splitmix(seed ^ 0x5CA7_7E12);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            rng = splitmix(rng);
            let mut at = (rng % candidates.len() as u64) as usize;
            while load.get(&candidates[at]).copied().unwrap_or(0) >= 250 {
                at = (at + 1) % candidates.len();
            }
            let net = candidates[at];
            *load.entry(net).or_insert(0) += 1;
            if role == Role::Attacker && self.nets[net].side == Side::Neutral {
                self.nets[net].side = Side::Attacker;
            }
            out.push(self.host_with(net, role, policy, link));
        }
        out
    }

    // ------------------------------------------------------------------
    // Lowering.
    // ------------------------------------------------------------------

    /// Builds the world. Every border router runs the defense named by
    /// `cfg.defense` (see [`aitf_core::DefensePolicy`]); the scenario
    /// layer sets it through `Scenario::defense(..)`.
    pub fn build(&self, seed: u64, cfg: AitfConfig) -> BuiltWorld {
        let mut b = WorldBuilder::new(seed, cfg);
        b.routing(self.routing);
        let mut ids: Vec<NetId> = Vec::with_capacity(self.nets.len());
        for n in &self.nets {
            let parent = n.parent.map(|p| {
                assert!(
                    p < ids.len(),
                    "network {:?} declared before its parent",
                    n.name
                );
                ids[p]
            });
            ids.push(b.network_with(&n.name, &n.prefix, parent, n.policy, n.uplink));
        }
        for p in &self.peerings {
            b.peer(ids[p.a], ids[p.b], p.link);
        }
        let host_ids: Vec<HostId> = self
            .hosts
            .iter()
            .map(|h| b.host_with(ids[h.net], h.policy, h.link))
            .collect();
        let world = b.build();
        BuiltWorld {
            world,
            net_ids: ids,
            host_ids,
            net_names: self.nets.iter().map(|n| n.name.clone()).collect(),
            net_sides: self.nets.iter().map(|n| n.side).collect(),
            host_roles: self.hosts.iter().map(|h| h.role).collect(),
        }
    }
}

/// Selects networks — the network counterpart of
/// [`crate::workload::HostSel`], used by churn actions that mutate
/// providers (e.g. `ChurnAction::SetRouterPolicy`).
#[derive(Debug, Clone)]
pub enum NetSel {
    /// One network, by name.
    Name(String),
    /// Several networks, by name, in the given order.
    Names(Vec<String>),
    /// Every network on a side, in declaration order.
    Side(Side),
    /// Every network, in declaration order.
    All,
}

impl NetSel {
    /// Resolves the selection against a built world, in declaration
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on a name that does not exist in the world.
    pub fn resolve(&self, world: &BuiltWorld) -> Vec<NetId> {
        match self {
            NetSel::Name(name) => vec![world.net(name)],
            NetSel::Names(names) => names.iter().map(|n| world.net(n)).collect(),
            NetSel::Side(side) => world.nets_on(*side),
            NetSel::All => world.net_ids.clone(),
        }
    }
}

/// A built world plus the role/name bookkeeping workloads and probes
/// select by. Net/host handles are the ones the builder actually
/// returned, indexed by declaration position — lookups never assume
/// anything about how `WorldBuilder` allocates ids.
pub struct BuiltWorld {
    /// The runnable world.
    pub world: World,
    net_ids: Vec<NetId>,
    host_ids: Vec<HostId>,
    net_names: Vec<String>,
    net_sides: Vec<Side>,
    host_roles: Vec<Role>,
}

impl BuiltWorld {
    /// The network named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such network exists.
    pub fn net(&self, name: &str) -> NetId {
        let i = self
            .net_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no network named {name:?} in the world"));
        self.net_ids[i]
    }

    /// All networks on a side, in declaration order.
    pub fn nets_on(&self, side: Side) -> Vec<NetId> {
        self.net_sides
            .iter()
            .zip(&self.net_ids)
            .filter(|&(s, _)| *s == side)
            .map(|(_, &id)| id)
            .collect()
    }

    /// All hosts with a role, in declaration order.
    pub fn hosts_with(&self, role: Role) -> Vec<HostId> {
        self.host_roles
            .iter()
            .zip(&self.host_ids)
            .filter(|&(r, _)| *r == role)
            .map(|(_, &id)| id)
            .collect()
    }

    /// The first host with `role`.
    ///
    /// # Panics
    ///
    /// Panics if no host has the role.
    pub fn first_with(&self, role: Role) -> HostId {
        let i = self
            .host_roles
            .iter()
            .position(|&r| r == role)
            .unwrap_or_else(|| panic!("no host with role {role:?} in the world"));
        self.host_ids[i]
    }

    /// The victim (first [`Role::Victim`] host).
    pub fn victim(&self) -> HostId {
        self.first_with(Role::Victim)
    }

    /// A host by declaration index.
    pub fn host_id(&self, index: usize) -> HostId {
        assert!(index < self.host_ids.len(), "host index out of range");
        self.host_ids[index]
    }

    /// The role a host was declared with.
    ///
    /// # Panics
    ///
    /// Panics on a handle that did not come from this world.
    pub fn role_of(&self, host: HostId) -> Role {
        let i = self
            .host_ids
            .iter()
            .position(|&h| h == host)
            .unwrap_or_else(|| panic!("host handle {host:?} is not from this world"));
        self.host_roles[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_paper_shape() {
        let t = TopologySpec::fig1(HostPolicy::Malicious);
        let f = t.build(1, AitfConfig::default());
        assert_eq!(f.world.net_count(), 6);
        assert_eq!(f.world.host_count(), 2);
        assert_eq!(f.world.net_name(f.net("G_net")), "G_net");
        assert!(f.world.uplink(f.net("G_net")).is_some());
        assert!(f.world.uplink(f.net("G_wan")).is_none());
        assert_eq!(f.role_of(f.victim()), Role::Victim);
    }

    #[test]
    fn chain_pair_depth_one_is_minimal() {
        let c = TopologySpec::chain_pair(1, HostPolicy::Compliant).build(1, AitfConfig::default());
        assert_eq!(c.world.net_count(), 2);
        assert_eq!(c.nets_on(Side::Victim).len(), 1);
    }

    #[test]
    fn chain_pair_depth_three_equals_fig1_shape() {
        let c = TopologySpec::chain_pair(3, HostPolicy::Compliant).build(1, AitfConfig::default());
        assert_eq!(c.world.net_count(), 6);
        // G_1 is the leaf (has an uplink), G_3 the top (peered, no uplink).
        assert!(c.world.uplink(c.net("G_1")).is_some());
        assert!(c.world.uplink(c.net("G_3")).is_none());
    }

    #[test]
    fn star_world_counts() {
        let s = TopologySpec::star(8, 3, HostPolicy::Malicious, 10_000_000)
            .build(1, AitfConfig::default());
        assert_eq!(s.nets_on(Side::Attacker).len(), 8);
        assert_eq!(s.hosts_with(Role::Attacker).len(), 24);
        assert_eq!(s.world.net_count(), 10);
        assert_eq!(s.world.host_count(), 25);
    }

    #[test]
    fn tree_level_one_is_a_star() {
        let star = TopologySpec::star(4, 2, HostPolicy::Malicious, 10_000_000);
        let tree = TopologySpec::tree(1, 4, 2, HostPolicy::Malicious, 10_000_000);
        assert_eq!(star.nets.len(), tree.nets.len());
        for (a, b) in star.nets.iter().zip(&tree.nets) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(a.parent, b.parent);
        }
        assert_eq!(star.hosts.len(), tree.hosts.len());
    }

    #[test]
    fn deep_tree_hangs_zombies_off_intermediate_providers() {
        let t = TopologySpec::tree(2, 3, 2, HostPolicy::Malicious, 10_000_000);
        // hub + victim_net + 3 mid ADs + 9 leaves.
        assert_eq!(t.nets.len(), 14);
        let b = t.build(1, AitfConfig::default());
        assert_eq!(b.nets_on(Side::Attacker).len(), 9);
        assert_eq!(b.hosts_with(Role::Attacker).len(), 18);
        // Leaves are two hops below the hub.
        let leaf = b.net("zombie_net_0");
        let mid = b.net("ad_0");
        assert!(b.world.uplink(leaf).is_some());
        assert!(b.world.uplink(mid).is_some());
        assert!(b.world.uplink(b.net("hub")).is_none());
    }

    #[test]
    fn star_scales_past_256_nets() {
        // The checked PrefixAlloc bound exists for armies beyond the old
        // 64-net sweeps: building a 300-net star must not exhaust it.
        let t = TopologySpec::star(300, 1, HostPolicy::Malicious, 10_000_000);
        assert_eq!(t.nets.len(), 302);
        let b = t.build(7, AitfConfig::default());
        assert_eq!(b.world.net_count(), 302);
        assert_eq!(b.world.host_count(), 301);
        assert_eq!(b.hosts_with(Role::Attacker).len(), 300);
    }

    #[test]
    #[should_panic(expected = "at most 250")]
    fn tree_rejects_overfull_leaves() {
        let _ = TopologySpec::tree(1, 2, 251, HostPolicy::Malicious, 10_000_000);
    }

    #[test]
    #[should_panic(expected = "/16 prefixes exist")]
    fn tree_rejects_worlds_past_the_prefix_space() {
        // 10 levels of branching 4 ≈ 1.4M networks > 60k /16s; the checked
        // arithmetic must also survive absurd inputs without wrapping.
        let _ = TopologySpec::tree(10, 4, 1, HostPolicy::Malicious, 10_000_000);
    }

    #[test]
    fn power_law_generates_a_heavy_tailed_capped_depth_graph() {
        let spec = PowerLawSpec {
            n_nets: 2000,
            skew: 0.8,
            max_depth: 5,
            peering_fraction: 0.02,
            ..PowerLawSpec::default()
        };
        let t = TopologySpec::power_law(&spec);
        assert_eq!(t.nets.len(), 2002);
        assert_eq!(t.routing, RoutingMode::Hierarchical);
        assert_eq!(t.nets[0].name, "core");
        assert_eq!(t.nets[1].name, "victim_net");
        // Depth cap honoured.
        let mut depth = vec![0usize; t.nets.len()];
        let mut degree = vec![0usize; t.nets.len()];
        for (i, n) in t.nets.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < i, "parents precede children");
                depth[i] = depth[p] + 1;
                degree[p] += 1;
                degree[i] += 1;
            }
            assert!(depth[i] <= 5, "depth cap violated at {}", n.name);
        }
        // Heavy tail: the best-connected provider dwarfs the median (a
        // uniform tree of 2000 nets has max degree ~15).
        let max_degree = *degree.iter().max().expect("nonempty");
        assert!(max_degree > 100, "no heavy tail: max degree {max_degree}");
        let stubs = degree.iter().filter(|&&d| d == 1).count();
        assert!(stubs > 1000, "most networks must be stubs: {stubs}");
        assert!(!t.peerings.is_empty(), "peering shortcuts expected");
        // Deterministic: same spec, same graph.
        let again = TopologySpec::power_law(&spec);
        assert_eq!(t.nets.len(), again.nets.len());
        assert!(t
            .nets
            .iter()
            .zip(&again.nets)
            .all(|(a, b)| a.parent == b.parent && a.prefix == b.prefix));
    }

    #[test]
    fn power_law_world_builds_and_routes() {
        let spec = PowerLawSpec {
            n_nets: 300,
            ..PowerLawSpec::default()
        };
        let mut t = TopologySpec::power_law(&spec);
        let placed = t.scatter_hosts(
            2..302,
            40,
            Role::Legit,
            HostPolicy::Compliant,
            WorldBuilder::default_host_link(),
            9,
        );
        assert_eq!(placed.len(), 40);
        let b = t.build(1, AitfConfig::default());
        assert_eq!(b.world.net_count(), 302);
        assert_eq!(b.hosts_with(Role::Legit).len(), 40);
        assert_eq!(b.role_of(b.victim()), Role::Victim);
    }

    #[test]
    #[should_panic(expected = "only hold")]
    fn scatter_hosts_rejects_overcommitment() {
        let mut t = TopologySpec::new();
        t.net("a", "10.1.0.0/24", None);
        let _ = t.scatter_hosts(
            0..1,
            251,
            Role::Legit,
            HostPolicy::Compliant,
            WorldBuilder::default_host_link(),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate network name")]
    fn duplicate_net_names_are_rejected() {
        let mut t = TopologySpec::new();
        t.net("a", "10.1.0.0/16", None);
        t.net("a", "10.2.0.0/16", None);
    }

    #[test]
    fn policy_overrides_by_name() {
        let mut t = TopologySpec::fig1(HostPolicy::Malicious);
        t.set_net_policy("B_net", RouterPolicy::non_cooperating());
        assert!(!t.nets[t.net_index("B_net")].policy.cooperating);
        t.set_all_net_policies(RouterPolicy::legacy());
        assert!(t.nets.iter().all(|n| !n.policy.aitf_enabled));
    }
}
