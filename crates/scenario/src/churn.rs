//! Dynamic worlds: scheduled mid-run world mutations.
//!
//! A static scenario fixes its host set and traffic for the whole run; a
//! *dynamic* one churns — attack hosts retire, fresh zombies join in
//! waves, legitimate clients arrive while the attack is underway. A
//! [`ChurnSpec`] is the declarative layer for exactly that: an ordered
//! list of [`EventSpec`]s, each a virtual-time instant plus a
//! [`ChurnAction`], compiled onto the runtime attach/detach/activate
//! hooks of `aitf-core`/`aitf-netsim`
//! ([`aitf_core::World::detach_host`], [`aitf_core::World::attach_host`],
//! [`aitf_core::World::activate_app`]).
//!
//! Determinism: events fire at fixed virtual times in declaration order,
//! between event-loop segments, so a churning scenario is exactly as
//! bit-deterministic as a static one — the engine's thread-invariance
//! suite pins this on the E15 experiment.
//!
//! ```
//! use aitf_core::HostPolicy;
//! use aitf_netsim::SimDuration;
//! use aitf_scenario::{
//!     ChurnAction, HostSel, ProbeSet, Role, Scenario, TargetSel, TopologySpec, TrafficSpec,
//! };
//!
//! // Two zombies flood from t = 0; both retire at t = 2 s and two fresh
//! // ones (declared idle, detached at t = 0) join in their place.
//! let outcome = Scenario::new(TopologySpec::star(4, 1, HostPolicy::Malicious, 10_000_000))
//!     .duration(SimDuration::from_secs(4))
//!     .traffic(TrafficSpec::flood(
//!         HostSel::RoleSlice(Role::Attacker, 0, 2),
//!         TargetSel::Victim,
//!         200,
//!         500,
//!     ))
//!     .event(
//!         SimDuration::ZERO,
//!         ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 2, 2)),
//!     )
//!     .event(
//!         SimDuration::from_secs(2),
//!         ChurnAction::Detach(HostSel::RoleSlice(Role::Attacker, 0, 2)),
//!     )
//!     .event(
//!         SimDuration::from_secs(2),
//!         ChurnAction::Attach(HostSel::RoleSlice(Role::Attacker, 2, 2)),
//!     )
//!     .event(
//!         SimDuration::from_secs(2),
//!         ChurnAction::StartTraffic(TrafficSpec::flood(
//!             HostSel::RoleSlice(Role::Attacker, 2, 2),
//!             TargetSel::Victim,
//!             200,
//!             500,
//!         )),
//!     )
//!     .probes(ProbeSet::new().leak_ratio("leak_r"))
//!     .run(7);
//! assert!(outcome.events > 0);
//! ```

use aitf_core::{HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;

use crate::topology::{BuiltWorld, NetSel};
use crate::workload::{HostSel, TrafficSpec};

/// A bespoke mutation closure (the churn escape hatch).
pub type ChurnFn = Box<dyn FnOnce(&mut BuiltWorld)>;

/// One scheduled world mutation.
pub enum ChurnAction {
    /// Retire hosts: tail circuits blocked both ways, traffic apps go
    /// quiet. At `t = 0` this declares hosts that have not joined yet.
    Detach(HostSel),
    /// (Re)join hosts: tail circuits unblocked; any installed apps restart
    /// (their `starting_after` windows count from this instant).
    Attach(HostSel),
    /// Flip hosts' compliance policy mid-run (a zombie "cleaned up", a
    /// client compromised).
    SetHostPolicy(HostSel, HostPolicy),
    /// Flip networks' router policy mid-run — providers joining or
    /// leaving AITF mid-attack. Compiles onto
    /// [`aitf_core::World::set_router_policy`], which also broadcasts the
    /// participation change to every other router's deployment view, so
    /// escalation immediately re-routes around (or back through) the
    /// flipped provider.
    SetRouterPolicy(NetSel, RouterPolicy),
    /// Compile a traffic entry onto the (already running) world — army
    /// growth waves, legitimate arrivals. The entry's `starting_after` /
    /// `stagger` windows are relative to the event time.
    StartTraffic(TrafficSpec),
    /// Arbitrary mutation.
    Custom(ChurnFn),
}

impl std::fmt::Debug for ChurnAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnAction::Detach(sel) => f.debug_tuple("Detach").field(sel).finish(),
            ChurnAction::Attach(sel) => f.debug_tuple("Attach").field(sel).finish(),
            ChurnAction::SetHostPolicy(sel, p) => {
                f.debug_tuple("SetHostPolicy").field(sel).field(p).finish()
            }
            ChurnAction::SetRouterPolicy(sel, p) => f
                .debug_tuple("SetRouterPolicy")
                .field(sel)
                .field(p)
                .finish(),
            ChurnAction::StartTraffic(spec) => f.debug_tuple("StartTraffic").field(spec).finish(),
            ChurnAction::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl ChurnAction {
    /// Applies the mutation to a built world. Selection-based actions
    /// resolve against host *declaration* order, like workloads do.
    ///
    /// # Panics
    ///
    /// Panics if a selection resolves to no hosts — a silently empty churn
    /// event would masquerade as a world that never changed.
    pub fn apply(self, world: &mut BuiltWorld) {
        match self {
            ChurnAction::Detach(sel) => {
                for host in resolve_nonempty(&sel, world, "Detach") {
                    world.world.detach_host(host);
                }
            }
            ChurnAction::Attach(sel) => {
                for host in resolve_nonempty(&sel, world, "Attach") {
                    world.world.attach_host(host);
                }
            }
            ChurnAction::SetHostPolicy(sel, policy) => {
                for host in resolve_nonempty(&sel, world, "SetHostPolicy") {
                    world.world.host_mut(host).set_policy(policy);
                }
            }
            ChurnAction::SetRouterPolicy(sel, policy) => {
                let nets = sel.resolve(world);
                assert!(
                    !nets.is_empty(),
                    "churn SetRouterPolicy event selects no networks"
                );
                for net in nets {
                    world.world.set_router_policy(net, policy);
                }
            }
            ChurnAction::StartTraffic(spec) => spec.install(world),
            ChurnAction::Custom(f) => f(world),
        }
    }
}

fn resolve_nonempty(sel: &HostSel, world: &BuiltWorld, what: &str) -> Vec<aitf_core::HostId> {
    let hosts = sel.resolve(world);
    assert!(!hosts.is_empty(), "churn {what} event selects no hosts");
    hosts
}

/// One instant on the churn timeline.
#[derive(Debug)]
pub struct EventSpec {
    /// When the mutation fires, relative to the scenario start. Must be
    /// strictly before the scenario duration (an event at the horizon
    /// could never take effect).
    pub at: SimDuration,
    /// What changes.
    pub action: ChurnAction,
}

/// The scheduled mutations of one scenario, applied in `(time,
/// declaration)` order. Events at `t = 0` apply before the simulation
/// starts (hosts detached at zero begin the run offline).
#[derive(Debug, Default)]
pub struct ChurnSpec {
    /// The events, in declaration order.
    pub events: Vec<EventSpec>,
}

impl ChurnSpec {
    /// An empty (static) timeline.
    pub fn new() -> Self {
        ChurnSpec::default()
    }

    /// Builder-style append.
    pub fn at(mut self, at: SimDuration, action: ChurnAction) -> Self {
        self.push(at, action);
        self
    }

    /// Appends an event.
    pub fn push(&mut self, at: SimDuration, action: ChurnAction) {
        self.events.push(EventSpec { at, action });
    }

    /// Returns `true` if no mutations are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted into firing order: by time, declaration order
    /// breaking ties (a stable sort, so same-instant events apply exactly
    /// as declared).
    pub fn into_schedule(mut self) -> Vec<EventSpec> {
        self.events.sort_by_key(|e| e.at);
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Role, TopologySpec};
    use crate::workload::TargetSel;

    #[test]
    fn schedule_sorts_by_time_stably() {
        let spec = ChurnSpec::new()
            .at(
                SimDuration::from_secs(2),
                ChurnAction::Detach(HostSel::Index(0)),
            )
            .at(
                SimDuration::from_secs(1),
                ChurnAction::Detach(HostSel::Index(1)),
            )
            .at(
                SimDuration::from_secs(1),
                ChurnAction::Attach(HostSel::Index(2)),
            );
        let schedule = spec.into_schedule();
        assert_eq!(schedule[0].at, SimDuration::from_secs(1));
        assert!(matches!(schedule[0].action, ChurnAction::Detach(_)));
        assert!(matches!(schedule[1].action, ChurnAction::Attach(_)));
        assert_eq!(schedule[2].at, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "selects no hosts")]
    fn empty_selection_fails_loudly() {
        let topo = TopologySpec::star(2, 1, aitf_core::HostPolicy::Malicious, 10_000_000);
        let mut world = crate::Scenario::new(topo).build(1);
        ChurnAction::Detach(HostSel::Role(Role::Legit)).apply(&mut world);
    }

    #[test]
    fn set_host_policy_applies_to_selection() {
        let topo = TopologySpec::star(2, 1, aitf_core::HostPolicy::Malicious, 10_000_000);
        let mut world = crate::Scenario::new(topo).build(1);
        ChurnAction::SetHostPolicy(HostSel::Role(Role::Attacker), HostPolicy::Compliant)
            .apply(&mut world);
        // No panic and the world still runs; compliance is observable via
        // behaviour (covered by E15 / host tests), here we just exercise
        // the action path.
        world.world.sim.run_for(SimDuration::from_millis(10));
        let _ = TargetSel::Victim;
    }
}
