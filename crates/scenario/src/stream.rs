//! Streaming, constant-memory aggregation primitives for probes.
//!
//! At the 100k–1M-net scale the measurement layer must not materialize
//! per-flow or per-host state: a probe that keeps a `HashMap<Addr, u64>`
//! of per-source byte counts grows with the attack, which is exactly the
//! failure mode the paper says a border router avoids. The three
//! primitives here are all O(1) per event and O(parameters) in memory,
//! deterministic for a given seed, and allocation-free after
//! construction (the trace-build zero-alloc pin applies to them):
//!
//! - [`CountMinSketch`] — per-key counts with a one-sided error bound:
//!   `estimate(k) >= true(k)` always, and
//!   `estimate(k) <= true(k) + ε·total` with high probability, where
//!   `ε ≈ e / width`.
//! - [`TopK`] — the heavy-hitter ranking fed by sketch estimates; O(k)
//!   per update, exact on the ranking whenever the sketch error is below
//!   the gap between the k-th and (k+1)-th flow.
//! - [`Reservoir`] — a fixed-size uniform sample for distributional
//!   metrics (quantiles, means) over an unbounded value stream
//!   (Vitter's Algorithm R with a SplitMix64 sequence).
//!
//! Every primitive reports [`footprint_bytes`](CountMinSketch::footprint_bytes)
//! so scenarios can emit their probe memory as a metric and CI can gate
//! on it staying flat as the world grows.

use aitf_engine::splitmix;

/// A count-min sketch: `depth` rows of `width` counters, each row hashed
/// with an independent seeded mix.
///
/// # Examples
///
/// ```
/// use aitf_scenario::stream::CountMinSketch;
///
/// let mut cms = CountMinSketch::new(1024, 4, 7);
/// cms.add(42, 10);
/// cms.add(42, 5);
/// assert!(cms.estimate(42) >= 15);
/// assert_eq!(cms.total(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// Power-of-two row width (the requested width rounded up).
    width: usize,
    /// Per-row hash seeds, derived from the constructor seed.
    row_seeds: Vec<u64>,
    /// `depth × width` counters, row-major.
    rows: Vec<u64>,
    /// Total count added (the `N` of the ε·N error bound).
    total: u64,
}

impl CountMinSketch {
    /// Builds a sketch of at least `width` counters per row and `depth`
    /// rows, hashing with a deterministic sequence derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch needs width > 0, depth > 0");
        let width = width.next_power_of_two();
        let row_seeds: Vec<u64> = (0..depth)
            .map(|r| splitmix(seed ^ (0xC0DE_0000 + r as u64)))
            .collect();
        CountMinSketch {
            width,
            row_seeds,
            rows: vec![0; width * depth],
            total: 0,
        }
    }

    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        let h = splitmix(key ^ self.row_seeds[row]);
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Adds `count` to `key`. O(depth), allocation-free.
    #[inline]
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.row_seeds.len() {
            let s = self.slot(row, key);
            self.rows[s] += count;
        }
        self.total += count;
    }

    /// The count-min estimate for `key`: never below the true count.
    #[inline]
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.row_seeds.len())
            .map(|row| self.rows[self.slot(row, key)])
            .min()
            .expect("depth > 0")
    }

    /// Total count across all keys (exact).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-row width after power-of-two rounding.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Heap + inline bytes held by the sketch — constant for fixed
    /// parameters, independent of how many events were added.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.capacity() * std::mem::size_of::<u64>()
            + self.row_seeds.capacity() * std::mem::size_of::<u64>()
    }
}

/// A fixed-capacity heavy-hitter table driven by sketch estimates:
/// `offer(key, estimate)` keeps the k largest keys seen so far.
///
/// The table is exact on *membership and ranking* whenever the true k-th
/// count exceeds the sketch's error bound over the (k+1)-th — the regime
/// the proptests pin at small scale.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// `(key, estimated count)`, unsorted; `ranked()` sorts a copy.
    entries: Vec<(u64, u64)>,
}

impl TopK {
    /// A tracker for the `k` heaviest keys.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k > 0");
        TopK {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Records that `key`'s running estimate is now `est`. O(k) scan,
    /// allocation-free after the table fills.
    #[inline]
    pub fn offer(&mut self, key: u64, est: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 = e.1.max(est);
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push((key, est));
            return;
        }
        let (mi, &min) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(key, est))| (est, std::cmp::Reverse(key)))
            .expect("k > 0");
        if (est, std::cmp::Reverse(key)) > (min.1, std::cmp::Reverse(min.0)) {
            self.entries[mi] = (key, est);
        }
    }

    /// The tracked heavy hitters, heaviest first (count descending, key
    /// ascending on ties — a total, deterministic order).
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut out = self.entries.clone();
        out.sort_by_key(|&(key, est)| (std::cmp::Reverse(est), key));
        out
    }

    /// Number of keys currently tracked (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Heap + inline bytes — constant for fixed `k`.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<(u64, u64)>()
    }
}

/// A uniform fixed-size sample of an unbounded f64 stream (Vitter's
/// Algorithm R), deterministic for a given seed.
///
/// # Examples
///
/// ```
/// use aitf_scenario::stream::Reservoir;
///
/// let mut r = Reservoir::new(64, 3);
/// for v in 0..1000 {
///     r.offer(v as f64);
/// }
/// assert_eq!(r.len(), 64);
/// let p50 = r.quantile(0.5);
/// assert!((200.0..800.0).contains(&p50), "median of 0..1000 ≈ 500, got {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    rng: u64,
    values: Vec<f64>,
}

impl Reservoir {
    /// A reservoir holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "reservoir needs cap > 0");
        Reservoir {
            cap,
            seen: 0,
            rng: splitmix(seed ^ 0x5EED_0000_0000_0001),
            values: Vec::with_capacity(cap),
        }
    }

    /// Offers one value. O(1), allocation-free after the reservoir fills
    /// (the backing vector is pre-allocated to `cap`).
    #[inline]
    pub fn offer(&mut self, v: f64) {
        self.seen += 1;
        if self.values.len() < self.cap {
            self.values.push(v);
            return;
        }
        self.rng = splitmix(self.rng);
        let j = self.rng % self.seen;
        if (j as usize) < self.cap {
            self.values[j as usize] = v;
        }
    }

    /// Values offered so far (exact).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Samples currently held (≤ cap).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was offered yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the held sample; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the held sample by
    /// nearest-rank on a sorted copy; `NaN` when empty. Sorts a clone —
    /// an end-of-run operation, not for the per-event path.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[rank]
    }

    /// Heap + inline bytes — constant for fixed `cap`.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cms_never_underestimates_and_is_exact_when_sparse() {
        let mut cms = CountMinSketch::new(256, 4, 42);
        for key in 0..20u64 {
            cms.add(key, key + 1);
        }
        for key in 0..20u64 {
            let est = cms.estimate(key);
            assert!(est > key, "estimate below truth for {key}");
            // 20 keys in a 256-wide × 4-deep sketch: collisions in all 4
            // rows are (astronomically) unlikely under the fixed seed.
            assert_eq!(est, key + 1, "sparse sketch must be exact");
        }
        assert_eq!(cms.total(), (1..=20).sum::<u64>());
    }

    #[test]
    fn cms_is_deterministic_per_seed() {
        let mut a = CountMinSketch::new(64, 3, 9);
        let mut b = CountMinSketch::new(64, 3, 9);
        let mut c = CountMinSketch::new(64, 3, 10);
        for key in 0..500u64 {
            a.add(key * 31, 2);
            b.add(key * 31, 2);
            c.add(key * 31, 2);
        }
        for key in 0..500u64 {
            assert_eq!(a.estimate(key * 31), b.estimate(key * 31));
        }
        // A different seed shuffles the collision pattern: some estimate
        // must differ (all-equal would mean the seed is ignored).
        assert!(
            (0..500u64).any(|k| a.estimate(k * 31) != c.estimate(k * 31)),
            "seed must change the hash layout"
        );
    }

    #[test]
    fn cms_footprint_ignores_event_count() {
        let mut cms = CountMinSketch::new(1024, 4, 1);
        let before = cms.footprint_bytes();
        for i in 0..100_000u64 {
            cms.add(i, 1);
        }
        assert_eq!(cms.footprint_bytes(), before);
    }

    #[test]
    fn topk_tracks_the_heaviest_keys_in_order() {
        let mut top = TopK::new(3);
        // Keys 1..=6 with counts 10,20,..,60, offered in running-estimate
        // style (monotone per key).
        for round in 1..=10u64 {
            for key in 1..=6u64 {
                top.offer(key, key * 10 * round / 10);
            }
        }
        let ranked = top.ranked();
        assert_eq!(
            ranked.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![6, 5, 4]
        );
        assert_eq!(ranked[0].1, 60);
    }

    #[test]
    fn topk_ties_break_by_key_ascending() {
        let mut top = TopK::new(2);
        top.offer(9, 5);
        top.offer(3, 5);
        top.offer(7, 5);
        let ranked = top.ranked();
        assert_eq!(ranked, vec![(3, 5), (7, 5)], "lowest keys win ties");
    }

    #[test]
    fn reservoir_holds_everything_below_capacity() {
        let mut r = Reservoir::new(10, 1);
        for v in 0..5 {
            r.offer(v as f64);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.quantile(0.0), 0.0);
        assert_eq!(r.quantile(1.0), 4.0);
    }

    #[test]
    fn reservoir_is_deterministic_and_unbiased_enough() {
        let sample = |seed: u64| {
            let mut r = Reservoir::new(100, seed);
            for v in 0..10_000 {
                r.offer(v as f64);
            }
            r
        };
        let a = sample(7);
        let b = sample(7);
        assert_eq!(a.quantile(0.5), b.quantile(0.5), "same seed, same sample");
        // A uniform sample of 0..10000 has mean ≈ 5000; allow a wide band
        // (the point is "not stuck on a prefix", not statistics).
        let mean = a.mean();
        assert!((3000.0..7000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn empty_reservoir_reports_nan() {
        let r = Reservoir::new(4, 1);
        assert!(r.mean().is_nan());
        assert!(r.quantile(0.5).is_nan());
        assert!(r.is_empty());
    }

    #[test]
    fn reservoir_footprint_ignores_stream_length() {
        let mut r = Reservoir::new(256, 1);
        let before = {
            for v in 0..256 {
                r.offer(v as f64);
            }
            r.footprint_bytes()
        };
        for v in 0..100_000 {
            r.offer(v as f64);
        }
        assert_eq!(r.footprint_bytes(), before);
    }
}
