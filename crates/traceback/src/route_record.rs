//! Route-record traceback: the deterministic in-packet provider.
//!
//! Border routers append their address to every forwarded packet (the AITF
//! shim layer). The victim side simply remembers, per flow, the most
//! complete record it has seen — one attack packet is enough, so
//! "traceback time is 0" exactly as the paper's Section IV-B example
//! assumes.

use std::collections::BTreeMap;

use aitf_packet::{Addr, FlowLabel, Packet};

use crate::Traceback;

/// Per-source-host cache of observed attack paths.
///
/// Keyed by `(src, dst)` host pair — the granularity AITF requests use.
/// Bounded: when full, new pairs are not recorded until old ones are
/// cleared (the protocol layer sizes this like the shadow cache).
#[derive(Debug)]
pub struct RouteRecordTraceback {
    capacity: usize,
    /// Ordered by `(src, dst)` so wildcard lookups scan deterministically.
    paths: BTreeMap<(Addr, Addr), Vec<Addr>>,
    observed: u64,
    /// Observations ignored because the cache was full.
    pub overflow: u64,
}

impl RouteRecordTraceback {
    /// Creates a provider remembering at most `capacity` host pairs.
    pub fn new(capacity: usize) -> Self {
        RouteRecordTraceback {
            capacity,
            paths: BTreeMap::new(),
            observed: 0,
            overflow: 0,
        }
    }

    /// Number of host pairs currently cached.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Drops the cached path for one host pair (after a request completes).
    pub fn forget(&mut self, src: Addr, dst: Addr) {
        self.paths.remove(&(src, dst));
    }

    /// Clears the whole cache.
    pub fn clear(&mut self) {
        self.paths.clear();
    }
}

impl Traceback for RouteRecordTraceback {
    fn observe(&mut self, packet: &Packet) {
        self.observed += 1;
        if packet.route_record.is_empty() {
            return;
        }
        let key = (packet.header.src, packet.header.dst);
        match self.paths.get_mut(&key) {
            Some(existing) => {
                // Keep the longest record seen (a packet that crossed more
                // border routers carries strictly more information); among
                // equal-length records the lexicographically smallest. The
                // cached path is thus a pure function of the *set* of
                // observed records, never of arrival order — spoofing
                // zombies sharing a pool produce many same-length records
                // per flow key, and a sharded run interleaves their
                // same-timestamp packets differently.
                let new = packet.route_record.hops();
                if new.len() > existing.len()
                    || (new.len() == existing.len() && new < existing.as_slice())
                {
                    // detlint::allow(hot-alloc): amortized — fires only when a better record replaces the cached path; steady state takes the early return above
                    *existing = new.to_vec();
                }
            }
            None => {
                if self.paths.len() >= self.capacity {
                    self.overflow += 1;
                    return;
                }
                // detlint::allow(hot-alloc): amortized — one allocation per newly seen host pair, bounded by `capacity`
                self.paths.insert(key, packet.route_record.hops().to_vec());
            }
        }
    }

    fn attack_path(&self, flow: &FlowLabel) -> Option<Vec<Addr>> {
        // Exact host-pair labels hit the cache directly; wildcard labels
        // fall back to any cached pair the label matches.
        if let (Some(src), Some(dst)) = (flow.src_host(), flow.dst_host()) {
            return self.paths.get(&(src, dst)).cloned();
        }
        // Deterministic choice among matches: the map is ordered by
        // (src, dst), so the first hit is the smallest key.
        self.paths
            .iter()
            .find(|((s, d), _)| flow.src.contains(*s) && flow.dst.contains(*d))
            .map(|(_, path)| path.clone())
    }

    fn name(&self) -> &'static str {
        "route-record"
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_packet::{Header, RouteRecord, TrafficClass};

    fn attack_packet(src: Addr, dst: Addr, hops: &[Addr]) -> Packet {
        let mut p = Packet::data(0, Header::udp(src, dst, 1, 2), TrafficClass::Attack, 100);
        p.route_record = RouteRecord::from_hops(hops.iter().copied());
        p
    }

    const A: Addr = Addr::new(10, 9, 0, 7);
    const V: Addr = Addr::new(10, 1, 0, 1);

    fn gw(i: u8) -> Addr {
        Addr::new(10, i, 0, 254)
    }

    #[test]
    fn one_packet_gives_full_path() {
        let mut tb = RouteRecordTraceback::new(16);
        tb.observe(&attack_packet(A, V, &[gw(9), gw(8), gw(1)]));
        let flow = FlowLabel::src_dst(A, V);
        assert_eq!(tb.attack_path(&flow), Some(vec![gw(9), gw(8), gw(1)]));
        assert_eq!(tb.observed(), 1);
    }

    #[test]
    fn longest_record_wins() {
        let mut tb = RouteRecordTraceback::new(16);
        tb.observe(&attack_packet(A, V, &[gw(8), gw(1)]));
        tb.observe(&attack_packet(A, V, &[gw(9), gw(8), gw(1)]));
        tb.observe(&attack_packet(A, V, &[gw(1)]));
        let flow = FlowLabel::src_dst(A, V);
        assert_eq!(tb.attack_path(&flow).unwrap().len(), 3);
    }

    #[test]
    fn equal_length_tie_break_is_arrival_order_independent() {
        // Two zombies behind different gateways spoof the same source:
        // whichever packet arrives first, the cached path must be the
        // same (the lexicographically smallest record), or a sharded
        // run's interleaving would pick different revocation targets.
        let flow = FlowLabel::src_dst(A, V);
        let mut forward = RouteRecordTraceback::new(16);
        forward.observe(&attack_packet(A, V, &[gw(9), gw(1)]));
        forward.observe(&attack_packet(A, V, &[gw(8), gw(1)]));
        let mut reverse = RouteRecordTraceback::new(16);
        reverse.observe(&attack_packet(A, V, &[gw(8), gw(1)]));
        reverse.observe(&attack_packet(A, V, &[gw(9), gw(1)]));
        assert_eq!(forward.attack_path(&flow), reverse.attack_path(&flow));
        assert_eq!(forward.attack_path(&flow), Some(vec![gw(8), gw(1)]));
    }

    #[test]
    fn empty_records_are_ignored() {
        let mut tb = RouteRecordTraceback::new(16);
        tb.observe(&attack_packet(A, V, &[]));
        assert!(tb.attack_path(&FlowLabel::src_dst(A, V)).is_none());
        assert!(tb.is_empty());
    }

    #[test]
    fn unknown_flow_has_no_path() {
        let mut tb = RouteRecordTraceback::new(16);
        tb.observe(&attack_packet(A, V, &[gw(9)]));
        let other = FlowLabel::src_dst(Addr::new(9, 9, 9, 9), V);
        assert!(tb.attack_path(&other).is_none());
    }

    #[test]
    fn wildcard_label_matches_cached_pairs() {
        let mut tb = RouteRecordTraceback::new(16);
        tb.observe(&attack_packet(A, V, &[gw(9), gw(1)]));
        let net_label = FlowLabel::net_to_host("10.9.0.0/16".parse().unwrap(), V);
        assert_eq!(tb.attack_path(&net_label), Some(vec![gw(9), gw(1)]));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut tb = RouteRecordTraceback::new(2);
        for i in 0..5u8 {
            tb.observe(&attack_packet(Addr::new(10, 9, 0, i), V, &[gw(9)]));
        }
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.overflow, 3);
    }

    #[test]
    fn forget_releases_capacity() {
        let mut tb = RouteRecordTraceback::new(1);
        tb.observe(&attack_packet(A, V, &[gw(9)]));
        tb.forget(A, V);
        assert!(tb.is_empty());
        tb.observe(&attack_packet(Addr::new(10, 9, 0, 8), V, &[gw(9)]));
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.overflow, 0);
    }
}
