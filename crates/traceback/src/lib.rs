//! Traceback providers for AITF.
//!
//! Section II-F of the paper: *"AITF operation assumes that the victim's
//! gateway can determine (a) who is the attacker's gateway ... (b) who is
//! the next AITF node on the attack path ... These assumptions are met, if
//! an efficient traceback technique as those described in \[SWKA00\]
//! \[SPS+01\] is available."*
//!
//! The protocol layer is agnostic to *which* traceback technique is
//! deployed; it consumes the [`Traceback`] trait. Two providers are
//! implemented:
//!
//! - [`RouteRecordTraceback`] — the deterministic in-packet route-record
//!   shim the paper's performance analysis assumes (Section IV-B cites an
//!   architecture "like \[CG00\], where traceback is automatically provided
//!   inside each packet ... traceback time is 0"). One attack packet is
//!   enough to learn the full path.
//! - [`SamplingTraceback`] — a probabilistic node-sampling scheme in the
//!   spirit of \[SWKA00\]: border routers stamp packets with their address
//!   with probability `p` (and downstream routers increment a distance
//!   counter), so the victim needs many packets before the path converges.
//!   This is the ablation provider: the protocol outcome is identical, only
//!   the identification latency grows.

pub mod route_record;
pub mod sampling;

use aitf_packet::{Addr, FlowLabel, Packet};

pub use route_record::RouteRecordTraceback;
pub use sampling::{SamplingTraceback, MARK_PROBABILITY_DEFAULT};

/// A source of attack-path information for the victim side.
///
/// Implementations observe the data packets a node receives and answer path
/// queries for a given undesired flow. Paths are ordered attacker side
/// first, exactly like [`aitf_packet::RouteRecord`].
pub trait Traceback {
    /// Feeds one received packet to the provider.
    fn observe(&mut self, packet: &Packet);

    /// Best-known attack path for packets matching `flow`, attacker side
    /// first; `None` until the provider has converged for that flow.
    fn attack_path(&self, flow: &FlowLabel) -> Option<Vec<Addr>>;

    /// Human-readable provider name for experiment output.
    fn name(&self) -> &'static str;

    /// Packets observed so far (diagnostics).
    fn observed(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_packet::{Header, RouteRecord, TrafficClass};

    /// The two providers must agree on a fully recorded path once the
    /// sampling provider has converged.
    #[test]
    fn providers_agree_on_converged_path() {
        let attacker = Addr::new(10, 9, 0, 7);
        let victim = Addr::new(10, 1, 0, 1);
        let flow = FlowLabel::src_dst(attacker, victim);
        let path = [
            Addr::new(10, 9, 0, 254),
            Addr::new(10, 8, 0, 254),
            Addr::new(10, 1, 0, 254),
        ];

        let mut rr = RouteRecordTraceback::new(1024);
        let mut pkt = Packet::data(
            1,
            Header::udp(attacker, victim, 1, 2),
            TrafficClass::Attack,
            100,
        );
        pkt.route_record = RouteRecord::from_hops(path);
        rr.observe(&pkt);

        let mut sampling = SamplingTraceback::new(1024, 3).with_stability(0);
        // Deterministically synthesise the marks a long packet stream would
        // carry: every router at every distance, three samples each.
        for (i, &router) in path.iter().enumerate() {
            for _ in 0..3 {
                let mut p = Packet::data(
                    2,
                    Header::udp(attacker, victim, 1, 2),
                    TrafficClass::Attack,
                    100,
                );
                // Router at index i is (len-1-i) border hops before delivery.
                p.mark = Some(aitf_packet::TracebackMark {
                    router,
                    distance: (path.len() - 1 - i) as u8,
                });
                sampling.observe(&p);
            }
        }

        assert_eq!(rr.attack_path(&flow).as_deref(), Some(&path[..]));
        assert_eq!(sampling.attack_path(&flow).as_deref(), Some(&path[..]));
    }
}
