//! Probabilistic node-sampling traceback (\[SWKA00\]-style).
//!
//! Marking side (implemented by border routers in `aitf-core`): with
//! probability `p` a forwarding border router overwrites the packet's
//! [`aitf_packet::TracebackMark`] with its own address and distance 0;
//! otherwise, if a mark is present, it increments the distance. Because a
//! downstream router may always overwrite, surviving marks from a router
//! `d` hops upstream arrive with probability `p(1-p)^d` — the victim sees
//! a geometric mixture and needs many packets before the far end of the
//! path is represented.
//!
//! Reconstruction side (this module): per flow, collect a vote table
//! `distance → router → count`. The path has converged when every distance
//! from 0 to the maximum seen has at least `min_samples` votes for its
//! winning router; the path is the winners ordered by *descending*
//! distance (farthest router = attacker's gateway first).

use std::collections::BTreeMap;

use aitf_packet::{Addr, FlowLabel, Packet};

use crate::Traceback;

/// Default marking probability, the classic value from \[SWKA00\].
pub const MARK_PROBABILITY_DEFAULT: f64 = 0.04;

#[derive(Debug, Default)]
struct FlowVotes {
    /// `votes[distance][router] = count`. Ordered maps: reconstruction
    /// iterates these, and the reported path must be a pure function of
    /// the vote multiset, never of hash order.
    votes: BTreeMap<u8, BTreeMap<Addr, u64>>,
    max_distance: u8,
    samples: u64,
    /// Marked samples observed since `max_distance` last grew. Marks from
    /// far routers are geometrically rare (`p(1-p)^d`), so the collector
    /// must not trust a path until the maximum distance has been stable
    /// for a while — otherwise it reports a truncated path.
    stable: u64,
}

/// Marked samples the maximum distance must stay unchanged for before a
/// reconstruction is trusted (see [`SamplingTraceback::with_stability`]).
pub const STABILITY_DEFAULT: u64 = 128;

/// Sampling-based traceback collector for a victim-side node.
#[derive(Debug)]
pub struct SamplingTraceback {
    capacity: usize,
    min_samples: u64,
    stability: u64,
    flows: BTreeMap<(Addr, Addr), FlowVotes>,
    observed: u64,
}

impl SamplingTraceback {
    /// Creates a collector for at most `capacity` host pairs, declaring
    /// convergence once every distance has `min_samples` votes and the
    /// maximum distance has been stable for [`STABILITY_DEFAULT`] marked
    /// samples.
    pub fn new(capacity: usize, min_samples: u64) -> Self {
        assert!(min_samples > 0, "min_samples must be at least 1");
        SamplingTraceback {
            capacity,
            min_samples,
            stability: STABILITY_DEFAULT,
            flows: BTreeMap::new(),
            observed: 0,
        }
    }

    /// Overrides the stability window (0 trusts the vote table as-is;
    /// tests that synthesise complete tables use this).
    pub fn with_stability(mut self, stability: u64) -> Self {
        self.stability = stability;
        self
    }

    /// Number of host pairs being tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if no marks have been collected.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Marked packets collected for one host pair.
    pub fn samples_for(&self, src: Addr, dst: Addr) -> u64 {
        self.flows.get(&(src, dst)).map_or(0, |f| f.samples)
    }

    /// Drops the state for one host pair.
    pub fn forget(&mut self, src: Addr, dst: Addr) {
        self.flows.remove(&(src, dst));
    }

    fn reconstruct(&self, votes: &FlowVotes) -> Option<Vec<Addr>> {
        if votes.stable < self.stability {
            return None;
        }
        let mut path = Vec::with_capacity(votes.max_distance as usize + 1);
        // Farthest distance first: that router is closest to the attacker.
        for d in (0..=votes.max_distance).rev() {
            let dist_votes = votes.votes.get(&d)?;
            let (&winner, &count) = dist_votes
                .iter()
                .max_by_key(|&(addr, count)| (*count, std::cmp::Reverse(*addr)))?;
            if count < self.min_samples {
                return None;
            }
            path.push(winner);
        }
        Some(path)
    }
}

impl Traceback for SamplingTraceback {
    fn observe(&mut self, packet: &Packet) {
        self.observed += 1;
        let Some(mark) = packet.mark else { return };
        let key = (packet.header.src, packet.header.dst);
        if !self.flows.contains_key(&key) && self.flows.len() >= self.capacity {
            return;
        }
        let f = self.flows.entry(key).or_default();
        f.samples += 1;
        if mark.distance > f.max_distance {
            f.max_distance = mark.distance;
            f.stable = 0;
        } else {
            f.stable += 1;
        }
        *f.votes
            .entry(mark.distance)
            .or_default()
            .entry(mark.router)
            .or_insert(0) += 1;
    }

    fn attack_path(&self, flow: &FlowLabel) -> Option<Vec<Addr>> {
        if let (Some(src), Some(dst)) = (flow.src_host(), flow.dst_host()) {
            return self
                .flows
                .get(&(src, dst))
                .and_then(|v| self.reconstruct(v));
        }
        // Deterministic choice among matches: the map is ordered by
        // (src, dst), so the first hit is the smallest key.
        self.flows
            .iter()
            .find(|((s, d), _)| flow.src.contains(*s) && flow.dst.contains(*d))
            .and_then(|(_, v)| self.reconstruct(v))
    }

    fn name(&self) -> &'static str {
        "sampling"
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_packet::{Header, TracebackMark, TrafficClass};

    const A: Addr = Addr::new(10, 9, 0, 7);
    const V: Addr = Addr::new(10, 1, 0, 1);

    fn gw(i: u8) -> Addr {
        Addr::new(10, i, 0, 254)
    }

    fn marked(router: Addr, distance: u8) -> Packet {
        let mut p = Packet::data(0, Header::udp(A, V, 1, 2), TrafficClass::Attack, 100);
        p.mark = Some(TracebackMark { router, distance });
        p
    }

    fn unmarked() -> Packet {
        Packet::data(0, Header::udp(A, V, 1, 2), TrafficClass::Attack, 100)
    }

    #[test]
    fn no_path_before_convergence() {
        let mut tb = SamplingTraceback::new(16, 2).with_stability(0);
        let flow = FlowLabel::src_dst(A, V);
        // Only one sample at distance 0; min is 2.
        tb.observe(&marked(gw(1), 0));
        assert!(tb.attack_path(&flow).is_none());
        tb.observe(&marked(gw(1), 0));
        // Distance 0 converged and it is the max distance: path = [gw1].
        assert_eq!(tb.attack_path(&flow), Some(vec![gw(1)]));
    }

    #[test]
    fn path_ordered_attacker_first() {
        let mut tb = SamplingTraceback::new(16, 1).with_stability(0);
        let flow = FlowLabel::src_dst(A, V);
        // gw9 is 2 hops upstream (attacker's gateway), gw1 adjacent.
        tb.observe(&marked(gw(9), 2));
        tb.observe(&marked(gw(8), 1));
        tb.observe(&marked(gw(1), 0));
        assert_eq!(tb.attack_path(&flow), Some(vec![gw(9), gw(8), gw(1)]));
    }

    #[test]
    fn gap_in_distances_blocks_convergence() {
        let mut tb = SamplingTraceback::new(16, 1).with_stability(0);
        let flow = FlowLabel::src_dst(A, V);
        tb.observe(&marked(gw(9), 2));
        tb.observe(&marked(gw(1), 0));
        // Distance 1 has no votes: the path must not be reported.
        assert!(tb.attack_path(&flow).is_none());
        tb.observe(&marked(gw(8), 1));
        assert!(tb.attack_path(&flow).is_some());
    }

    #[test]
    fn majority_vote_beats_noise() {
        let mut tb = SamplingTraceback::new(16, 2).with_stability(0);
        let flow = FlowLabel::src_dst(A, V);
        for _ in 0..10 {
            tb.observe(&marked(gw(1), 0));
        }
        // A burst of bogus votes for another router at the same distance.
        for _ in 0..3 {
            tb.observe(&marked(gw(7), 0));
        }
        assert_eq!(tb.attack_path(&flow), Some(vec![gw(1)]));
    }

    #[test]
    fn unmarked_packets_carry_no_information() {
        let mut tb = SamplingTraceback::new(16, 1);
        for _ in 0..100 {
            tb.observe(&unmarked());
        }
        assert!(tb.is_empty());
        assert_eq!(tb.observed(), 100);
    }

    #[test]
    fn capacity_bound_holds() {
        let mut tb = SamplingTraceback::new(2, 1);
        for i in 0..5u8 {
            let mut p = marked(gw(1), 0);
            p.header.src = Addr::new(10, 9, 0, i);
            tb.observe(&p);
        }
        assert_eq!(tb.len(), 2);
    }

    #[test]
    fn samples_counted_per_flow() {
        let mut tb = SamplingTraceback::new(16, 1);
        tb.observe(&marked(gw(1), 0));
        tb.observe(&marked(gw(1), 0));
        assert_eq!(tb.samples_for(A, V), 2);
        tb.forget(A, V);
        assert_eq!(tb.samples_for(A, V), 0);
    }

    /// Regression: early distance-0 marks alone must NOT convince the
    /// collector that the path is one hop long.
    #[test]
    fn stability_window_prevents_truncated_paths() {
        let mut tb = SamplingTraceback::new(16, 1); // Default stability.
        let flow = FlowLabel::src_dst(A, V);
        for _ in 0..10 {
            tb.observe(&marked(gw(1), 0));
        }
        assert!(
            tb.attack_path(&flow).is_none(),
            "10 near marks must not yield a path under the default window"
        );
        // A far mark resets the window; after enough stable samples the
        // full path is reported.
        tb.observe(&marked(gw(9), 1));
        for _ in 0..200 {
            tb.observe(&marked(gw(1), 0));
            tb.observe(&marked(gw(9), 1));
        }
        assert_eq!(tb.attack_path(&flow), Some(vec![gw(9), gw(1)]));
    }

    /// End-to-end stochastic check: simulate the actual marking process
    /// over a 4-router path with a deterministic RNG and verify the
    /// reconstruction matches the true path.
    #[test]
    fn stochastic_marking_converges_to_true_path() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let path = [gw(9), gw(8), gw(2), gw(1)]; // Attacker side first.
        let p = 0.2;
        let mut rng = StdRng::seed_from_u64(7);
        let mut tb = SamplingTraceback::new(16, 3).with_stability(32);
        let flow = FlowLabel::src_dst(A, V);
        for _ in 0..4000 {
            let mut pkt = unmarked();
            // The packet crosses routers attacker-side first.
            for &router in &path {
                if rng.gen_bool(p) {
                    pkt.mark = Some(TracebackMark {
                        router,
                        distance: 0,
                    });
                } else if let Some(m) = &mut pkt.mark {
                    m.distance = m.distance.saturating_add(1);
                }
            }
            tb.observe(&pkt);
            if tb.attack_path(&flow).is_some() {
                break;
            }
        }
        assert_eq!(tb.attack_path(&flow), Some(path.to_vec()));
    }
}
