//! Churn invariants of the simulator itself: under arbitrary sequences
//! of runtime link attach/detach ([`Simulator::set_link_blocked`]) the
//! packet flow must stay *conserved* — every packet a node ever offered
//! to a link is accounted for as sent, queue-dropped, admin-dropped or
//! still in custody (queued / serialising) — and the event queue must
//! never hold a stale event (one scheduled before the current clock).
//!
//! This is the netsim half of the dynamic-worlds contract: higher layers
//! (aitf-core's `detach_host`/`attach_host`, aitf-scenario's `ChurnSpec`)
//! may flip link state between event-loop segments at any instant, and
//! nothing may leak or double-count.

use aitf_netsim::{
    impl_node_any, Context, LinkDirection, LinkId, LinkParams, NetworkBuilder, Node, NodeId,
    SimDuration, Simulator,
};
use aitf_packet::{Addr, Header, Packet, TrafficClass};
use proptest::prelude::*;

/// Sends `budget` packets, one every `period`, towards its only link.
struct FiniteSource {
    budget: u32,
    period: SimDuration,
    sent: u64,
}

impl Node for FiniteSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        if self.budget == 0 {
            // Chain ends here: a drained world must quiesce completely.
            return;
        }
        self.budget -= 1;
        self.sent += 1;
        let id = ctx.next_packet_id();
        let h = Header::udp(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 9), 1, 2);
        let link = ctx.my_links()[0];
        ctx.send(link, Packet::data(id, h, TrafficClass::Legit, 400));
        ctx.set_timer(self.period, 0);
    }

    impl_node_any!();
}

/// Forwards everything from one side to the other along a chain.
struct Relay;

impl Node for Relay {
    fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        for i in 0..ctx.my_links().len() {
            let l = ctx.my_links()[i];
            if l != link {
                ctx.send(l, packet);
                return;
            }
        }
    }

    impl_node_any!();
}

/// Counts deliveries.
struct Sink {
    received: u64,
}

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {
        self.received += 1;
    }

    impl_node_any!();
}

/// src → relay → sink over two finite-bandwidth links with small queues
/// (so churn actually produces queue drops too, not just admin drops).
fn chain(budget: u32) -> (Simulator, NodeId, NodeId, Vec<LinkId>) {
    let mut b = NetworkBuilder::new(9);
    let src = b.add_node();
    let mid = b.add_node();
    let sink = b.add_node();
    let params =
        LinkParams::ethernet(2_000_000, SimDuration::from_millis(2)).with_queue_bytes(2048);
    let l0 = b.connect(src, mid, params);
    let l1 = b.connect(mid, sink, params);
    let mut sim = b.build();
    sim.install(
        src,
        Box::new(FiniteSource {
            budget,
            period: SimDuration::from_millis(2),
            sent: 0,
        }),
    );
    sim.install(mid, Box::new(Relay));
    sim.install(sink, Box::new(Sink { received: 0 }));
    (sim, src, sink, vec![l0, l1])
}

/// One churn step: flip one direction of one link, then advance.
#[derive(Debug, Clone)]
struct ChurnOp {
    link: usize,
    a_to_b: bool,
    blocked: bool,
    advance_ms: u64,
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    (0usize..2, any::<bool>(), any::<bool>(), 1u64..40).prop_map(
        |(link, a_to_b, blocked, advance_ms)| ChurnOp {
            link,
            a_to_b,
            blocked,
            advance_ms,
        },
    )
}

/// In-custody packets of one direction: waiting in the queue or on the
/// serialiser. (Packets in propagation are `Deliver` events, counted via
/// the pending-event check after the drain.)
fn in_custody(sim: &Simulator, link: LinkId, dir: LinkDirection) -> u64 {
    let l = sim.link(link);
    l.queued_pkts(dir) as u64 + u64::from(l.has_in_flight(dir))
}

proptest! {
    #[test]
    fn packet_conservation_and_no_stale_events_under_link_churn(
        ops in proptest::collection::vec(arb_op(), 1..40),
        budget in 1u32..120,
    ) {
        let (mut sim, src, sink, links) = chain(budget);
        for op in &ops {
            let dir = if op.a_to_b {
                LinkDirection::AToB
            } else {
                LinkDirection::BToA
            };
            sim.set_link_blocked(links[op.link], dir, op.blocked);
            sim.run_for(SimDuration::from_millis(op.advance_ms));
            // The event loop never leaves a stale event behind: whatever
            // is pending fires at or after the clock.
            if let Some(next) = sim.next_event_time() {
                prop_assert!(next >= sim.now(), "stale event at {next:?}, now {:?}", sim.now());
            }
            // Mid-run conservation, per direction: offered packets are
            // sent, dropped, or still in custody — never lost.
            for &link in &links {
                for dir in [LinkDirection::AToB, LinkDirection::BToA] {
                    let s = *sim.link_stats(link, dir);
                    prop_assert_eq!(
                        s.offered_pkts,
                        s.sent_pkts
                            + s.queue_drop_pkts
                            + s.admin_drop_pkts
                            + in_custody(&sim, link, dir),
                        "conservation broken on {:?} {:?}: {:?}", link, dir, s
                    );
                }
            }
        }

        // Unblock everything and drain: the source is finite, so the
        // world must quiesce with empty queues and an empty event loop —
        // nothing is scheduled past the horizon of the traffic itself.
        for &link in &links {
            sim.set_link_blocked(link, LinkDirection::AToB, false);
            sim.set_link_blocked(link, LinkDirection::BToA, false);
        }
        sim.run_for(SimDuration::from_secs(5));
        prop_assert_eq!(sim.pending_events(), 0, "drained world must quiesce");
        for &link in &links {
            for dir in [LinkDirection::AToB, LinkDirection::BToA] {
                prop_assert_eq!(in_custody(&sim, link, dir), 0u64);
                let s = *sim.link_stats(link, dir);
                prop_assert_eq!(
                    s.offered_pkts,
                    s.sent_pkts + s.queue_drop_pkts + s.admin_drop_pkts,
                    "post-drain conservation broken on {:?} {:?}: {:?}", link, dir, s
                );
            }
        }

        // End-to-end: everything the source offered either reached the
        // sink or was dropped at one of the two links.
        let offered = sim.node_ref::<FiniteSource>(src).unwrap().sent;
        let received = sim.node_ref::<Sink>(sink).unwrap().received;
        let dropped: u64 = links
            .iter()
            .map(|&l| {
                let s = sim.link_stats(l, LinkDirection::AToB);
                s.queue_drop_pkts + s.admin_drop_pkts
            })
            .sum();
        prop_assert_eq!(offered, received + dropped, "end-to-end conservation broken");
    }
}
