//! Point-to-point links with bandwidth, delay and drop-tail queues.
//!
//! A link is full duplex: each direction has its own transmission queue and
//! serialisation state. The model is the classic store-and-forward one —
//! a packet occupies the transmitter for `size * 8 / bandwidth`, then
//! propagates for the link delay, then is delivered to the peer node.
//!
//! When the queue is full the link drops the incoming packet (drop-tail).
//! This is where a DoS flood does its damage: the victim's tail circuit
//! queue fills with attack packets and legitimate packets are dropped, which
//! is exactly the failure mode the paper's introduction describes.

use std::collections::VecDeque;

use aitf_packet::Packet;

use crate::event::{EventKind, EventQueue};
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Index of a link in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// One of the two directions of a full-duplex link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkDirection {
    /// From endpoint `a` to endpoint `b`.
    AToB,
    /// From endpoint `b` to endpoint `a`.
    BToA,
}

impl LinkDirection {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            LinkDirection::AToB => LinkDirection::BToA,
            LinkDirection::BToA => LinkDirection::AToB,
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            LinkDirection::AToB => 0,
            LinkDirection::BToA => 1,
        }
    }
}

/// Static link properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkParams {
    /// Bandwidth in bits per second; `0` means infinite (zero
    /// serialisation time), useful for abstract control-plane experiments.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Per-direction queue capacity in bytes.
    pub queue_capacity_bytes: u32,
}

impl LinkParams {
    /// Default queue: 64 KiB per direction, a typical shallow edge buffer.
    pub const DEFAULT_QUEUE_BYTES: u32 = 64 * 1024;

    /// A link with finite bandwidth and the default queue.
    pub fn ethernet(bandwidth_bps: u64, delay: SimDuration) -> Self {
        LinkParams {
            bandwidth_bps,
            delay,
            queue_capacity_bytes: Self::DEFAULT_QUEUE_BYTES,
        }
    }

    /// An infinitely fast link (propagation delay only).
    pub fn infinite(delay: SimDuration) -> Self {
        LinkParams {
            bandwidth_bps: 0,
            delay,
            queue_capacity_bytes: u32::MAX,
        }
    }

    /// Overrides the queue capacity.
    pub fn with_queue_bytes(mut self, bytes: u32) -> Self {
        self.queue_capacity_bytes = bytes;
        self
    }

    /// Serialisation time of a packet of `bytes` at this bandwidth.
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        if self.bandwidth_bps == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                (bytes as u128 * 8 * 1_000_000_000 / self.bandwidth_bps as u128) as u64,
            )
        }
    }
}

/// Per-direction traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets handed to this direction by the sending node.
    pub offered_pkts: u64,
    /// Bytes handed to this direction.
    pub offered_bytes: u64,
    /// Packets that completed transmission onto the wire.
    pub sent_pkts: u64,
    /// Bytes that completed transmission.
    pub sent_bytes: u64,
    /// Packets dropped because the queue was full.
    pub queue_drop_pkts: u64,
    /// Bytes dropped because the queue was full.
    pub queue_drop_bytes: u64,
    /// Packets dropped because the direction was administratively blocked
    /// (AITF disconnection).
    pub admin_drop_pkts: u64,
    /// High-water mark of queued bytes.
    pub max_queued_bytes: u64,
}

#[derive(Debug, Default)]
struct DirState {
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// The packet currently being serialised, if any.
    in_flight: Option<Packet>,
    blocked: bool,
    stats: LinkStats,
}

impl DirState {
    /// Ring-buffer target for one direction, sized for ~1 KB packets and
    /// clamped. The queue starts *unallocated* — at 100k+ links, pre-sizing
    /// every edge buffer costs gigabytes while almost all tail links stay
    /// idle forever. The first packet that actually queues reserves this
    /// target in one step (see [`Link::enqueue`]), so a busy direction
    /// still reaches its steady state of zero allocations per event.
    fn queue_target(params: &LinkParams) -> usize {
        (params.queue_capacity_bytes / 1024).clamp(8, 256) as usize
    }
}

/// A full-duplex point-to-point link.
#[derive(Debug)]
pub struct Link {
    id: LinkId,
    a: NodeId,
    b: NodeId,
    params: LinkParams,
    dirs: [DirState; 2],
}

impl Link {
    /// Creates a link between `a` and `b`.
    pub fn new(id: LinkId, a: NodeId, b: NodeId, params: LinkParams) -> Self {
        Link {
            id,
            a,
            b,
            params,
            dirs: [DirState::default(), DirState::default()],
        }
    }

    /// The link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The two endpoints, in `(a, b)` order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The static parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// The peer of `node` on this link.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("node {node:?} is not an endpoint of link {:?}", self.id)
        }
    }

    /// The direction of traffic *sent by* `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint.
    pub fn dir_from(&self, node: NodeId) -> LinkDirection {
        if node == self.a {
            LinkDirection::AToB
        } else if node == self.b {
            LinkDirection::BToA
        } else {
            panic!("node {node:?} is not an endpoint of link {:?}", self.id)
        }
    }

    /// Statistics for one direction.
    pub fn stats(&self, dir: LinkDirection) -> &LinkStats {
        &self.dirs[dir.index()].stats
    }

    /// Currently queued bytes in one direction (including the in-flight
    /// packet's bytes are *not* counted — only waiting packets).
    pub fn queued_bytes(&self, dir: LinkDirection) -> u64 {
        self.dirs[dir.index()].queued_bytes
    }

    /// Packets currently waiting in one direction's queue (excluding the
    /// in-flight packet) — conservation checks read this.
    pub fn queued_pkts(&self, dir: LinkDirection) -> usize {
        self.dirs[dir.index()].queue.len()
    }

    /// Returns `true` if a packet is being serialised in `dir` right now.
    pub fn has_in_flight(&self, dir: LinkDirection) -> bool {
        self.dirs[dir.index()].in_flight.is_some()
    }

    /// Administratively blocks or unblocks one direction. Blocked traffic
    /// is counted in [`LinkStats::admin_drop_pkts`]. This models AITF
    /// disconnection: a provider stops carrying a client's packets.
    pub fn set_blocked(&mut self, dir: LinkDirection, blocked: bool) {
        self.dirs[dir.index()].blocked = blocked;
    }

    /// Returns `true` if the direction is administratively blocked.
    pub fn is_blocked(&self, dir: LinkDirection) -> bool {
        self.dirs[dir.index()].blocked
    }

    /// Hands a packet to the link for transmission in `dir` at time `now`.
    ///
    /// Schedules the necessary [`EventKind::LinkTxDone`] event if the
    /// transmitter was idle. Returns `true` if the packet was accepted
    /// (queued or started), `false` if it was dropped.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        dir: LinkDirection,
        packet: Packet,
        events: &mut EventQueue,
    ) -> bool {
        let link_id = self.id;
        let params = self.params;
        let d = &mut self.dirs[dir.index()];
        d.stats.offered_pkts += 1;
        d.stats.offered_bytes += packet.size_bytes as u64;
        if d.blocked {
            d.stats.admin_drop_pkts += 1;
            return false;
        }
        if d.in_flight.is_none() {
            // Transmitter idle: start serialising immediately.
            let tx = params.tx_time(packet.size_bytes);
            d.in_flight = Some(packet);
            events.schedule(now + tx, EventKind::LinkTxDone { link: link_id, dir });
            true
        } else if d.queued_bytes + packet.size_bytes as u64 <= params.queue_capacity_bytes as u64 {
            d.queued_bytes += packet.size_bytes as u64;
            d.stats.max_queued_bytes = d.stats.max_queued_bytes.max(d.queued_bytes);
            if d.queue.capacity() == 0 {
                // Lazy one-off reservation; see `DirState::queue_target`.
                d.queue.reserve(DirState::queue_target(&params));
            }
            d.queue.push_back(packet);
            true
        } else {
            d.stats.queue_drop_pkts += 1;
            d.stats.queue_drop_bytes += packet.size_bytes as u64;
            false
        }
    }

    /// Completes the in-flight transmission in `dir`: schedules delivery to
    /// the peer after the propagation delay and starts serialising the next
    /// queued packet, if any.
    ///
    /// # Panics
    ///
    /// Panics if no transmission was in flight (an internal scheduling bug).
    pub fn on_tx_done(&mut self, now: SimTime, dir: LinkDirection, events: &mut EventQueue) {
        let link_id = self.id;
        let params = self.params;
        let receiver = match dir {
            LinkDirection::AToB => self.b,
            LinkDirection::BToA => self.a,
        };
        let d = &mut self.dirs[dir.index()];
        let packet = d
            .in_flight
            .take()
            .expect("LinkTxDone with no in-flight packet");
        d.stats.sent_pkts += 1;
        d.stats.sent_bytes += packet.size_bytes as u64;
        events.schedule(
            now + params.delay,
            EventKind::Deliver {
                node: receiver,
                link: link_id,
                packet,
            },
        );
        if let Some(next) = d.queue.pop_front() {
            d.queued_bytes -= next.size_bytes as u64;
            let tx = params.tx_time(next.size_bytes);
            d.in_flight = Some(next);
            events.schedule(now + tx, EventKind::LinkTxDone { link: link_id, dir });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aitf_packet::{Addr, Header, TrafficClass};

    fn pkt(id: u64, size: u32) -> Packet {
        let h = Header::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2);
        Packet::data(id, h, TrafficClass::Legit, size)
    }

    fn drain_deliveries(q: &mut EventQueue, link: &mut Link) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            match ev.kind {
                EventKind::LinkTxDone { dir, .. } => {
                    // Re-borrow pattern mirrors the simulator's dispatch.
                    let now = ev.time;
                    link.on_tx_done(now, dir, q);
                }
                EventKind::Deliver { packet, .. } => out.push((ev.time, packet.id)),
                EventKind::Timer { .. } => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let p = LinkParams::ethernet(8_000_000, SimDuration::ZERO);
        // 1000 bytes at 8 Mbps = 1 ms.
        assert_eq!(p.tx_time(1000), SimDuration::from_millis(1));
        assert_eq!(
            LinkParams::infinite(SimDuration::ZERO).tx_time(1_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn single_packet_delivery_time_is_tx_plus_delay() {
        let params = LinkParams::ethernet(8_000_000, SimDuration::from_millis(10));
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(1, 1000), &mut q));
        let deliveries = drain_deliveries(&mut q, &mut link);
        // 1 ms serialisation + 10 ms propagation.
        assert_eq!(deliveries, vec![(SimTime(11_000_000), 1)]);
    }

    #[test]
    fn back_to_back_packets_serialise_sequentially() {
        let params = LinkParams::ethernet(8_000_000, SimDuration::ZERO);
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        for i in 0..3 {
            assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(i, 1000), &mut q));
        }
        let deliveries = drain_deliveries(&mut q, &mut link);
        let times: Vec<u64> = deliveries.iter().map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![1_000_000, 2_000_000, 3_000_000]);
        let ids: Vec<u64> = deliveries.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2], "FIFO order preserved");
    }

    #[test]
    fn queue_overflow_drops_tail() {
        let params = LinkParams::ethernet(8_000_000, SimDuration::ZERO).with_queue_bytes(1500);
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        // First packet goes in flight, second and parts of third queue.
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(0, 1000), &mut q));
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(1, 1000), &mut q));
        // Queue already holds 1000 bytes; another 1000 exceeds 1500.
        assert!(!link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(2, 1000), &mut q));
        let s = link.stats(LinkDirection::AToB);
        assert_eq!(s.queue_drop_pkts, 1);
        assert_eq!(s.queue_drop_bytes, 1000);
        assert_eq!(s.offered_pkts, 3);
        let delivered = drain_deliveries(&mut q, &mut link);
        assert_eq!(delivered.len(), 2);
    }

    #[test]
    fn directions_are_independent() {
        let params = LinkParams::ethernet(8_000_000, SimDuration::ZERO);
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(1, 1000), &mut q));
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::BToA, pkt(2, 1000), &mut q));
        // Both directions serialise concurrently: two TxDone at t=1ms.
        let mut receivers = Vec::new();
        while let Some(ev) = q.pop() {
            match ev.kind {
                EventKind::LinkTxDone { dir, .. } => link.on_tx_done(ev.time, dir, &mut q),
                EventKind::Deliver { node, packet, .. } => receivers.push((node, packet.id)),
                _ => unreachable!(),
            }
        }
        receivers.sort();
        assert_eq!(receivers, vec![(NodeId(0), 2), (NodeId(1), 1)]);
    }

    #[test]
    fn blocked_direction_drops_everything() {
        let params = LinkParams::infinite(SimDuration::ZERO);
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        link.set_blocked(LinkDirection::AToB, true);
        assert!(!link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(1, 100), &mut q));
        assert!(q.is_empty());
        assert_eq!(link.stats(LinkDirection::AToB).admin_drop_pkts, 1);
        // Reverse direction unaffected.
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::BToA, pkt(2, 100), &mut q));
        // Unblock and verify traffic resumes.
        link.set_blocked(LinkDirection::AToB, false);
        assert!(link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(3, 100), &mut q));
    }

    #[test]
    fn peer_and_direction_helpers() {
        let link = Link::new(
            LinkId(3),
            NodeId(5),
            NodeId(9),
            LinkParams::infinite(SimDuration::ZERO),
        );
        assert_eq!(link.peer_of(NodeId(5)), NodeId(9));
        assert_eq!(link.peer_of(NodeId(9)), NodeId(5));
        assert_eq!(link.dir_from(NodeId(5)), LinkDirection::AToB);
        assert_eq!(link.dir_from(NodeId(9)), LinkDirection::BToA);
        assert_eq!(LinkDirection::AToB.reverse(), LinkDirection::BToA);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_foreign_node_panics() {
        let link = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkParams::infinite(SimDuration::ZERO),
        );
        let _ = link.peer_of(NodeId(7));
    }

    #[test]
    fn max_queue_highwater_tracks() {
        let params = LinkParams::ethernet(8_000, SimDuration::ZERO).with_queue_bytes(10_000);
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), params);
        let mut q = EventQueue::new();
        for i in 0..5 {
            link.enqueue(SimTime::ZERO, LinkDirection::AToB, pkt(i, 1000), &mut q);
        }
        assert_eq!(link.stats(LinkDirection::AToB).max_queued_bytes, 4000);
    }
}
