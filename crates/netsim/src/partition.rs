//! Deterministic graph partitioner for sharded simulation.
//!
//! A [`PartitionSpec`] describes the node graph as a *group forest*: groups
//! of nodes (for AITF worlds, one group per network — the border router and
//! its hosts) arranged in the provider tree. [`partition`] cuts that forest
//! into at most `k` shards so that every group stays whole, heavy subtrees
//! split before light ones, and the result is a pure function of the inputs
//! — no randomness, no hash-map iteration order.
//!
//! The partition feeds the conservative-lookahead shard scheduler in
//! [`crate::sim`]: shards only exchange events at window barriers spaced by
//! the minimum propagation delay over *cut links* (links whose endpoints
//! land in different shards). That lookahead must be strictly positive, so
//! a zero-delay cut edge is a [`PartitionError`] rather than a silent
//! correctness hazard.

use std::sync::Arc;

use crate::link::LinkId;
use crate::node::NodeId;
use crate::time::SimDuration;

/// The node graph described as a forest of node groups.
///
/// Groups are the atomic placement unit: the partitioner never splits a
/// group across shards. `parents[g]` arranges groups into a forest (e.g.
/// the AITF provider tree); subtrees are the preferred cut boundaries.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    groups: Vec<Vec<NodeId>>,
    parents: Vec<Option<usize>>,
}

impl PartitionSpec {
    /// Builds a spec from explicit groups and a parent forest.
    ///
    /// # Panics
    ///
    /// Panics if `groups` and `parents` disagree in length.
    pub fn new(groups: Vec<Vec<NodeId>>, parents: Vec<Option<usize>>) -> Self {
        assert_eq!(
            groups.len(),
            parents.len(),
            "one parent slot per group required"
        );
        PartitionSpec { groups, parents }
    }

    /// A structureless spec: every node is its own parentless group. Useful
    /// for generic simulations without a provider hierarchy.
    pub fn flat(node_count: usize) -> Self {
        PartitionSpec {
            groups: (0..node_count).map(|i| vec![NodeId(i)]).collect(),
            parents: vec![None; node_count],
        }
    }

    /// The node groups.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// The group forest (`None` = root).
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }
}

/// Why a partition could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A link with zero propagation delay crosses shards; the conservative
    /// window protocol needs strictly positive lookahead.
    ZeroDelayCut(LinkId),
    /// A node in range appears in no group.
    Ungrouped(NodeId),
    /// A node appears in more than one group.
    DuplicateNode(NodeId),
    /// A group id referenced by a node or parent slot is out of range, or a
    /// parent chain is cyclic.
    InvalidForest(usize),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroDelayCut(l) => write!(
                f,
                "link {l:?} has zero propagation delay but crosses shards; \
                 conservative lookahead must be > 0"
            ),
            PartitionError::Ungrouped(n) => write!(f, "node {n:?} appears in no group"),
            PartitionError::DuplicateNode(n) => {
                write!(f, "node {n:?} appears in more than one group")
            }
            PartitionError::InvalidForest(g) => {
                write!(
                    f,
                    "group {g} has an out-of-range parent or lies on a parent cycle"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// The result of partitioning: a shard assignment plus the derived
/// cross-shard schedule parameters.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Number of shards actually produced (≤ the requested count; 1 means
    /// the simulation stays single-threaded).
    pub shards: usize,
    /// Owning shard of every node.
    pub shard_of: Arc<Vec<u16>>,
    /// Exactly the links whose endpoints fall in different shards, in link
    /// id order.
    pub cut_links: Vec<LinkId>,
    /// Minimum propagation delay over `cut_links` — the conservative
    /// lookahead. `None` iff there are no cut links.
    pub lookahead: Option<SimDuration>,
}

impl Partition {
    /// The trivial single-shard partition over `node_count` nodes.
    pub fn identity(node_count: usize) -> Self {
        Partition {
            shards: 1,
            shard_of: Arc::new(vec![0; node_count]),
            cut_links: Vec::new(),
            lookahead: None,
        }
    }
}

/// One work unit during splitting: a group subtree, or a single group whose
/// child subtrees have been split off.
#[derive(Clone, Copy)]
struct Piece {
    root: usize,
    /// `true` once the piece has been reduced to its root group alone.
    solo: bool,
    weight: usize,
}

/// Cuts the node graph into at most `k` shards.
///
/// Splitting is deterministic: pieces start as the root subtrees of the
/// group forest, the heaviest splittable piece (ties: lowest root group id)
/// is repeatedly exploded into its root group plus its child subtrees until
/// there are `k` pieces or nothing left to split, and pieces are then packed
/// heaviest-first onto the least-loaded shard (ties: lowest shard id).
///
/// `links` is indexed by [`LinkId`]: `(a, b, propagation_delay)`.
pub fn partition(
    k: usize,
    node_count: usize,
    links: &[(NodeId, NodeId, SimDuration)],
    spec: &PartitionSpec,
) -> Result<Partition, PartitionError> {
    let groups = &spec.groups;
    let parents = &spec.parents;
    let g = groups.len();

    // Every node in exactly one group.
    let mut group_of = vec![usize::MAX; node_count];
    for (gi, members) in groups.iter().enumerate() {
        for &n in members {
            if n.0 >= node_count {
                return Err(PartitionError::InvalidForest(gi));
            }
            if group_of[n.0] != usize::MAX {
                return Err(PartitionError::DuplicateNode(n));
            }
            group_of[n.0] = gi;
        }
    }
    if let Some(i) = group_of.iter().position(|&gi| gi == usize::MAX) {
        return Err(PartitionError::Ungrouped(NodeId(i)));
    }

    // Validate the forest and collect children lists.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); g];
    let mut roots: Vec<usize> = Vec::new();
    for (gi, &p) in parents.iter().enumerate() {
        match p {
            None => roots.push(gi),
            Some(pi) if pi < g && pi != gi => children[pi].push(gi),
            Some(_) => return Err(PartitionError::InvalidForest(gi)),
        }
    }
    // Reachability from the roots doubles as the cycle check.
    let mut subtree_weight = vec![0usize; g];
    let mut order: Vec<usize> = Vec::with_capacity(g);
    let mut stack: Vec<usize> = roots.clone();
    while let Some(gi) = stack.pop() {
        order.push(gi);
        stack.extend(children[gi].iter().copied());
    }
    if order.len() != g {
        let seen: std::collections::HashSet<usize> = order.iter().copied().collect();
        let orphan = (0..g).find(|gi| !seen.contains(gi)).expect("missing group");
        return Err(PartitionError::InvalidForest(orphan));
    }
    for &gi in order.iter().rev() {
        subtree_weight[gi] = groups[gi].len()
            + children[gi]
                .iter()
                .map(|&c| subtree_weight[c])
                .sum::<usize>();
    }

    if k <= 1 || node_count == 0 {
        return Ok(Partition::identity(node_count));
    }
    assert!(k < u16::MAX as usize, "shard count must fit in u16");

    // Split the heaviest splittable piece until we have k pieces.
    let mut pieces: Vec<Piece> = roots
        .iter()
        .map(|&r| Piece {
            root: r,
            solo: false,
            weight: subtree_weight[r],
        })
        .collect();
    while pieces.len() < k {
        let candidate = pieces
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.solo && !children[p.root].is_empty())
            .max_by(|(_, a), (_, b)| a.weight.cmp(&b.weight).then(b.root.cmp(&a.root)))
            .map(|(i, _)| i);
        let Some(i) = candidate else { break };
        let root = pieces[i].root;
        pieces[i] = Piece {
            root,
            solo: true,
            weight: groups[root].len(),
        };
        pieces.extend(children[root].iter().map(|&c| Piece {
            root: c,
            solo: false,
            weight: subtree_weight[c],
        }));
    }

    // Pack pieces onto shards: heaviest first onto the lightest shard.
    let shard_count = k.min(pieces.len()).max(1);
    if shard_count == 1 {
        return Ok(Partition::identity(node_count));
    }
    pieces.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.root.cmp(&b.root)));
    let mut load = vec![0usize; shard_count];
    let mut shard_of_group = vec![0u16; g];
    for p in &pieces {
        let s = (0..shard_count)
            .min_by_key(|&s| (load[s], s))
            .expect("at least one shard");
        load[s] += p.weight;
        if p.solo {
            shard_of_group[p.root] = s as u16;
        } else {
            let mut stack = vec![p.root];
            while let Some(gi) = stack.pop() {
                shard_of_group[gi] = s as u16;
                stack.extend(children[gi].iter().copied());
            }
        }
    }
    let mut shard_of = vec![0u16; node_count];
    for (i, s) in shard_of.iter_mut().enumerate() {
        *s = shard_of_group[group_of[i]];
    }

    // Cut links and the conservative lookahead.
    let mut cut_links = Vec::new();
    let mut lookahead: Option<SimDuration> = None;
    for (i, &(a, b, delay)) in links.iter().enumerate() {
        if shard_of[a.0] != shard_of[b.0] {
            if delay.is_zero() {
                return Err(PartitionError::ZeroDelayCut(LinkId(i)));
            }
            cut_links.push(LinkId(i));
            lookahead = Some(match lookahead {
                Some(l) if l <= delay => l,
                _ => delay,
            });
        }
    }

    Ok(Partition {
        shards: shard_count,
        shard_of: Arc::new(shard_of),
        cut_links,
        lookahead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<usize>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    /// A two-level tree of groups: root (1 node) with `n` children of
    /// `size` nodes each. Returns (spec, node_count, uplinks).
    fn star_spec(
        n: usize,
        size: usize,
    ) -> (PartitionSpec, usize, Vec<(NodeId, NodeId, SimDuration)>) {
        let mut groups = vec![vec![NodeId(0)]];
        let mut parents = vec![None];
        let mut links = Vec::new();
        let mut next = 1;
        for _ in 0..n {
            groups.push(ids(next..next + size));
            parents.push(Some(0));
            links.push((NodeId(0), NodeId(next), SimDuration::from_millis(10)));
            next += size;
        }
        (PartitionSpec::new(groups, parents), next, links)
    }

    #[test]
    fn k1_is_identity() {
        let (spec, n, links) = star_spec(4, 3);
        let p = partition(1, n, &links, &spec).unwrap();
        assert_eq!(p.shards, 1);
        assert!(p.shard_of.iter().all(|&s| s == 0));
        assert!(p.cut_links.is_empty());
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn splits_a_star_into_k_shards() {
        let (spec, n, links) = star_spec(4, 5);
        let p = partition(4, n, &links, &spec).unwrap();
        assert_eq!(p.shards, 4);
        // Every node placed, every shard populated.
        let mut pop = vec![0usize; p.shards];
        for &s in p.shard_of.iter() {
            pop[s as usize] += 1;
        }
        assert!(pop.iter().all(|&c| c > 0));
        // Groups stay whole: nodes 1..6 (first child net) share a shard.
        let s = p.shard_of[1];
        assert!((1..6).all(|i| p.shard_of[i] == s));
        // Cut links are exactly the links crossing shards, and the
        // lookahead is their min delay.
        let expect: Vec<LinkId> = links
            .iter()
            .enumerate()
            .filter(|(_, (a, b, _))| p.shard_of[a.0] != p.shard_of[b.0])
            .map(|(i, _)| LinkId(i))
            .collect();
        assert_eq!(p.cut_links, expect);
        assert!(!expect.is_empty());
        assert_eq!(p.lookahead, Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn zero_delay_cut_is_rejected() {
        let (spec, n, mut links) = star_spec(3, 2);
        links[1].2 = SimDuration::ZERO;
        let err = partition(3, n, &links, &spec).unwrap_err();
        assert!(matches!(err, PartitionError::ZeroDelayCut(_)));
        // With one shard the zero-delay link is never cut.
        assert!(partition(1, n, &links, &spec).is_ok());
    }

    #[test]
    fn requesting_more_shards_than_groups_saturates() {
        let (spec, n, links) = star_spec(2, 2);
        let p = partition(16, n, &links, &spec).unwrap();
        assert!(p.shards <= 3, "root + two leaves = at most 3 pieces");
        assert!(p.shards >= 2);
    }

    #[test]
    fn ungrouped_and_duplicate_nodes_are_errors() {
        let spec = PartitionSpec::new(vec![vec![NodeId(0)]], vec![None]);
        assert_eq!(
            partition(2, 2, &[], &spec).unwrap_err(),
            PartitionError::Ungrouped(NodeId(1))
        );
        let dup = PartitionSpec::new(
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1)]],
            vec![None, None],
        );
        assert_eq!(
            partition(2, 2, &[], &dup).unwrap_err(),
            PartitionError::DuplicateNode(NodeId(1))
        );
    }

    #[test]
    fn cyclic_parents_are_rejected() {
        let spec = PartitionSpec::new(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            vec![Some(1), Some(0)],
        );
        assert!(matches!(
            partition(2, 2, &[], &spec).unwrap_err(),
            PartitionError::InvalidForest(_)
        ));
    }

    #[test]
    fn deterministic_output() {
        let (spec, n, links) = star_spec(7, 4);
        let a = partition(4, n, &links, &spec).unwrap();
        let b = partition(4, n, &links, &spec).unwrap();
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.cut_links, b.cut_links);
        assert_eq!(a.lookahead, b.lookahead);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random group forest + links strategy. Groups get 1..=4 nodes; each
    /// non-first group picks a parent among earlier groups (or none), which
    /// guarantees an acyclic forest.
    fn forest() -> impl Strategy<Value = (PartitionSpec, usize, Vec<(NodeId, NodeId, SimDuration)>)>
    {
        (
            proptest::collection::vec(1usize..=4, 1..12),
            proptest::collection::vec(any::<u64>(), 0..40),
        )
            .prop_map(|(sizes, link_seeds)| {
                let mut groups = Vec::new();
                let mut parents = Vec::new();
                let mut next = 0usize;
                for (gi, &size) in sizes.iter().enumerate() {
                    groups.push((next..next + size).map(NodeId).collect::<Vec<_>>());
                    // Deterministic pseudo-parent from the group index.
                    parents.push(if gi == 0 || gi % 3 == 0 {
                        None
                    } else {
                        Some((gi * 7 + 3) % gi)
                    });
                    next += size;
                }
                let n = next;
                let links: Vec<(NodeId, NodeId, SimDuration)> = link_seeds
                    .iter()
                    .filter_map(|&s| {
                        let a = (s % n as u64) as usize;
                        let b = ((s >> 16) % n as u64) as usize;
                        let delay = 1 + (s >> 32) % 1_000_000;
                        (a != b).then(|| (NodeId(a), NodeId(b), SimDuration::from_nanos(delay)))
                    })
                    .collect();
                (PartitionSpec::new(groups, parents), n, links)
            })
    }

    proptest! {
        /// Every node lands in exactly one shard, shard ids are dense, cut
        /// links are exactly the inter-shard links, the lookahead is the
        /// minimum cut-link delay and strictly positive, and K=1 is the
        /// identity.
        #[test]
        fn partition_invariants((spec, n, links) in forest(), k in 1usize..=6) {
            let p = partition(k, n, &links, &spec).unwrap();
            prop_assert_eq!(p.shard_of.len(), n);
            prop_assert!(p.shards >= 1 && p.shards <= k.max(1));
            prop_assert!(p.shard_of.iter().all(|&s| (s as usize) < p.shards));
            // Groups are atomic.
            for g in spec.groups() {
                if let Some(&first) = g.first() {
                    prop_assert!(g.iter().all(|&m| p.shard_of[m.0] == p.shard_of[first.0]));
                }
            }
            // Cut links are exactly the inter-shard links, in id order.
            let expect: Vec<LinkId> = links
                .iter()
                .enumerate()
                .filter(|(_, (a, b, _))| p.shard_of[a.0] != p.shard_of[b.0])
                .map(|(i, _)| LinkId(i))
                .collect();
            prop_assert_eq!(&p.cut_links, &expect);
            // Lookahead = min cut delay, strictly positive; None iff no cuts.
            let min_delay = expect.iter().map(|l| links[l.0].2).min();
            prop_assert_eq!(p.lookahead, min_delay);
            if let Some(l) = p.lookahead {
                prop_assert!(!l.is_zero());
            }
            if k == 1 {
                prop_assert_eq!(p.shards, 1);
                prop_assert!(p.shard_of.iter().all(|&s| s == 0));
                prop_assert!(p.cut_links.is_empty());
                prop_assert_eq!(p.lookahead, None);
            }
        }
    }
}
