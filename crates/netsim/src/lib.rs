//! Deterministic discrete-event network simulator.
//!
//! This crate is the testbed substrate for the AITF reproduction. The paper
//! evaluates the protocol on real router paths; the reproduction replaces
//! the physical network with a simulator that models the quantities the
//! paper's analysis depends on:
//!
//! - **links** with finite bandwidth, propagation delay and drop-tail
//!   queues ([`link`]) — so a flooded tail circuit actually drops
//!   legitimate packets, which is the damage AITF exists to stop;
//! - **nodes** (hosts and routers) as event-driven state machines
//!   ([`node`]) exchanging [`aitf_packet::Packet`]s;
//! - **virtual time** in nanoseconds ([`time`]) with a totally ordered
//!   event queue ([`event`]), so `Td`, `Tr`, `Ttmp` and `T` from Section IV
//!   of the paper are concrete, measurable delays;
//! - **topology and routing** helpers ([`topology`]) to build the paper's
//!   Figure 1 path and larger scenarios;
//! - **metrics** ([`metrics`]) for counters and time series that the
//!   experiment harness turns into the paper's tables and figures.
//!
//! Determinism: events are ordered by `(time, sequence)` and all randomness
//! flows from seeded [`rand::rngs::StdRng`] streams. Two runs with the same
//! seed produce identical results, which the integration suite asserts.
//! A simulator runs single-threaded by default; [`sim::Simulator::apply_shards`]
//! splits it into conservative-lookahead shards ([`partition`]) that may run
//! on worker threads — the window protocol never consults thread
//! interleaving, so sharded runs are bit-identical to single-threaded ones.
//!
//! # Examples
//!
//! ```
//! use aitf_netsim::{impl_node_any, Context, LinkId, LinkParams, NetworkBuilder, Node, SimDuration};
//! use aitf_packet::Packet;
//!
//! struct Sink;
//!
//! impl Node for Sink {
//!     fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}
//!     impl_node_any!();
//! }
//!
//! let mut b = NetworkBuilder::new(42);
//! let a = b.add_node();
//! let c = b.add_node();
//! b.connect(a, c, LinkParams::ethernet(10_000_000, SimDuration::from_millis(5)));
//! let mut sim = b.build();
//! sim.install(a, Box::new(Sink));
//! sim.install(c, Box::new(Sink));
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.now().as_secs_f64(), 1.0);
//! ```

pub mod event;
pub mod link;
pub mod metrics;
pub mod node;
pub mod partition;
pub mod sim;
pub mod time;
pub mod topology;

pub use event::{Event, EventKind, EventQueue};
pub use link::{Link, LinkDirection, LinkId, LinkParams, LinkStats};
pub use metrics::Metrics;
pub use node::{Context, MaybeSend, Node, NodeId};
pub use partition::{partition, Partition, PartitionError, PartitionSpec};
pub use sim::{NetworkBuilder, Simulator};
pub use time::{SimDuration, SimTime};

// Re-exported so node implementations can classify their dispatches for
// subsystem profiling without depending on aitf-trace directly.
pub use aitf_trace::{Subsystem, SubsystemProfile};
pub use topology::NextHops;
