//! The event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, produce time, chain descending,
//! sequence)`:
//!
//! - the **produce time** is the simulation instant the scheduling call
//!   ran at;
//! - the **chain** key identifies the causal chain the event descends
//!   from: an event scheduled outside any dispatch (`on_start`, external
//!   context calls, build time) roots a new chain keyed by its own firing
//!   time, and every event scheduled during a dispatch inherits the
//!   dispatched event's chain;
//! - the **sequence** number is a monotonically increasing per-queue
//!   tie-breaker, so remaining ties fire in scheduling order.
//!
//! In a classic single-threaded run the produce-time and chain components
//! are redundant: dispatch order is monotone in time, so among events
//! with equal firing times scheduling order *is* produce-time order, and
//! among phase-locked periodic chains (equal firing and produce times,
//! e.g. same-rate flood sources ticking on one nanosecond grid) the
//! sequence order resolves exactly like comparing the chains' ancestor
//! times lexicographically — the *younger* chain reaches its root (whose
//! own produce time is the earliest) first and therefore dispatches
//! first, which is precisely `chain` descending. Carrying both keys
//! explicitly lets a sharded run reproduce the single-threaded
//! interleave: a cross-shard delivery materialises in the destination
//! queue at a window barrier, later in wall-clock terms than any
//! same-instant local event, yet sorts exactly where its producing
//! dispatch would have put it. This total order is what makes the
//! simulator deterministic.
//!
//! # Memory layout
//!
//! The queue is an index-ordered binary heap over a **slab** of event
//! payloads. Heap entries are 40-byte `Copy` tuples `(time, ptime, chain,
//! seq, slot)`; the [`EventKind`] payloads — which carry whole packets
//! for `Deliver` events — live in slab slots and never move during heap
//! sift operations.
//! Popping recycles the slot through a free list, so in steady state the
//! queue performs **zero heap allocations per event**: the slab and heap
//! grow to the backlog's high-water mark once and are reused forever.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use aitf_packet::Packet;

use crate::link::{LinkDirection, LinkId};
use crate::node::NodeId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes propagation and arrives at `node` via `link`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Link the packet arrives on.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
    /// The head-of-line packet on one direction of a link finishes
    /// transmission; the link starts its propagation and begins serialising
    /// the next queued packet, if any.
    LinkTxDone {
        /// The transmitting link.
        link: LinkId,
        /// Which direction finished.
        dir: LinkDirection,
    },
    /// A node timer fires with an opaque token chosen by the node.
    Timer {
        /// The owning node.
        node: NodeId,
        /// Opaque token; the node gives it meaning.
        token: u64,
    },
}

/// A scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// The simulation instant the event was produced at (see the module
    /// docs for why equal firing times order by this first).
    pub ptime: SimTime,
    /// Root firing time of the causal chain this event descends from;
    /// equal `(time, ptime)` ties order by this *descending* (see the
    /// module docs).
    pub chain: u64,
    /// Scheduling-order tie breaker.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// The heap's unit of ordering: when, in what order, and *where* the
/// payload lives. `Copy`-small on purpose — heap sift operations move these
/// entries, never the payloads.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    time: SimTime,
    ptime: SimTime,
    chain: u64,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.ptime == other.ptime
            && self.chain == other.chain
            && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // on top. Note `chain` compares descending (younger chain first),
        // so it is NOT flipped here.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.ptime.cmp(&self.ptime))
            .then_with(|| self.chain.cmp(&other.chain))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Shard-ownership guard for a queue that belongs to one shard of a
/// partitioned simulation. Every queue is purely local — shard code only
/// ever schedules events for nodes it owns, because the only cross-shard
/// paths (cut links) are owned by the coordinator, which replays their
/// operations at window barriers and schedules the resulting `Deliver`s
/// directly into the destination shard's queue. The guard turns any
/// violation of that invariant into an immediate panic instead of a silent
/// determinism bug.
#[derive(Debug)]
pub(crate) struct ShardGuard {
    my_shard: u16,
    shard_of: Arc<Vec<u16>>,
}

/// Priority queue of pending events, earliest first.
///
/// Payloads are stored in a slab indexed by slot handles; see the module
/// docs for the layout and its allocation behaviour.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    slab: Vec<Option<EventKind>>,
    free: Vec<u32>,
    next_seq: u64,
    /// The current simulation instant, recorded as the produce time of
    /// every [`EventQueue::schedule`] call. The event loop keeps it at the
    /// dispatching event's time; between runs it is the simulation clock.
    now: SimTime,
    /// The chain key of the dispatch currently running, inherited by every
    /// event it schedules. `None` outside any dispatch: scheduled events
    /// then root fresh chains keyed by their own firing time.
    chain: Option<u64>,
    guard: Option<Box<ShardGuard>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Sets the produce time and chain key stamped onto subsequent
    /// [`EventQueue::schedule`] calls: the dispatching event's time and
    /// chain inside the event loop, or `(clock, None)` outside any
    /// dispatch (scheduled events then root fresh chains).
    pub(crate) fn set_ctx(&mut self, now: SimTime, chain: Option<u64>) {
        self.now = now;
        self.chain = chain;
    }

    /// The produce time and chain key a schedule call would be stamped
    /// with right now — what cut-link staging records so the barrier
    /// replay can order staged operations exactly like the heap would.
    pub(crate) fn produce_ctx(&self) -> (SimTime, Option<u64>) {
        (self.now, self.chain)
    }

    /// Schedules `kind` to fire at `time`, produced at the current instant
    /// on the current chain.
    ///
    /// In a sharded simulation every queue stays purely local: shard code
    /// only schedules for nodes it owns (cut links — the only cross-shard
    /// paths — are coordinator-owned and replayed at window barriers), an
    /// invariant [`EventQueue::bind_shard`] enforces for `Deliver`s.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let ptime = self.now;
        let chain = self.chain.unwrap_or(time.0);
        self.schedule_produced_at(time, ptime, chain, kind);
    }

    /// Schedules `kind` with an explicit produce time and chain key — the
    /// coordinator uses this to transplant replay-produced events into a
    /// shard's queue at the heap position their producing dispatch would
    /// have given them in a single-threaded run.
    pub(crate) fn schedule_produced_at(
        &mut self,
        time: SimTime,
        ptime: SimTime,
        chain: u64,
        kind: EventKind,
    ) {
        if let Some(guard) = self.guard.as_deref() {
            if let EventKind::Deliver { node, .. } = &kind {
                assert_eq!(
                    guard.shard_of[node.0], guard.my_shard,
                    "Deliver for foreign node {node:?} scheduled in shard {}",
                    guard.my_shard
                );
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slab[slot as usize].is_none(), "free slot occupied");
                self.slab[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("slab exceeds u32 slots");
                self.slab.push(Some(kind));
                slot
            }
        };
        self.heap.push(HeapEntry {
            time,
            ptime,
            chain,
            seq,
            slot,
        });
    }

    /// The firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event, recycling its payload slot.
    pub fn pop(&mut self) -> Option<Event> {
        let entry = self.heap.pop()?;
        let kind = self.slab[entry.slot as usize]
            .take()
            .expect("heap entry points at an occupied slot");
        self.free.push(entry.slot);
        Some(Event {
            time: entry.time,
            ptime: entry.ptime,
            chain: entry.chain,
            seq: entry.seq,
            kind,
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Payload slots ever created — the backlog's high-water mark
    /// (diagnostics; steady-state operation never grows this).
    pub fn slab_slots(&self) -> usize {
        self.slab.len()
    }

    /// Binds the queue to one shard of a partitioned simulation so
    /// [`EventQueue::schedule`] can check the locality invariant on every
    /// `Deliver`.
    pub(crate) fn bind_shard(&mut self, my_shard: u16, shard_of: Arc<Vec<u16>>) {
        self.guard = Some(Box::new(ShardGuard { my_shard, shard_of }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    fn pop_token(q: &mut EventQueue) -> u64 {
        match q.pop().expect("event").kind {
            EventKind::Timer { token, .. } => token,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), timer(0, 3));
        q.schedule(SimTime(10), timer(0, 1));
        q.schedule(SimTime(20), timer(0, 2));
        assert_eq!(pop_token(&mut q), 1);
        assert_eq!(pop_token(&mut q), 2);
        assert_eq!(pop_token(&mut q), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.schedule(SimTime(5), timer(0, token));
        }
        for expected in 0..100 {
            assert_eq!(pop_token(&mut q), expected);
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(50), timer(0, 0));
        q.schedule(SimTime(20), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime(20)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(50)));
    }

    #[test]
    fn len_and_scheduled_total_track_usage() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), timer(0, 0));
        q.schedule(SimTime(2), timer(0, 1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn pop_recycles_slab_slots() {
        let mut q = EventQueue::new();
        // Steady-state pattern: backlog of one, many schedule/pop cycles.
        q.schedule(SimTime(0), timer(0, 0));
        for i in 1..10_000u64 {
            q.schedule(SimTime(i), timer(0, i));
            q.pop();
        }
        assert_eq!(
            q.slab_slots(),
            2,
            "slab must stay at the backlog high-water mark"
        );
        assert_eq!(q.scheduled_total(), 10_000);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), timer(0, 10));
        q.schedule(SimTime(5), timer(0, 5));
        assert_eq!(pop_token(&mut q), 5);
        q.schedule(SimTime(7), timer(0, 7));
        q.schedule(SimTime(12), timer(0, 12));
        assert_eq!(pop_token(&mut q), 7);
        assert_eq!(pop_token(&mut q), 10);
        assert_eq!(pop_token(&mut q), 12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must yield non-decreasing times regardless of insertion
        /// order, and equal times must preserve insertion order.
        #[test]
        fn total_order_holds(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), EventKind::Timer { node: NodeId(0), token: i as u64 });
            }
            let mut last: Option<(SimTime, u64)> = None;
            while let Some(ev) = q.pop() {
                let token = match ev.kind {
                    EventKind::Timer { token, .. } => token,
                    _ => unreachable!(),
                };
                if let Some((lt, lseq)) = last {
                    prop_assert!(ev.time >= lt);
                    if ev.time == lt {
                        prop_assert!(ev.seq > lseq, "FIFO broken among equal times");
                    }
                }
                prop_assert_eq!(times[token as usize], ev.time.0);
                last = Some((ev.time, ev.seq));
            }
        }
    }
}
