//! Shortest-path routing over the static topology.
//!
//! Routers in the AITF world forward by destination prefix; the protocol
//! crate turns "next hop towards node N" into "next hop towards prefix P"
//! by mapping each prefix to the node that owns it. This module provides
//! the node-to-node half: an all-pairs next-hop table computed with
//! Dijkstra per source over arbitrary positive link weights.
//!
//! Determinism: when two paths tie, the one whose next hop has the smaller
//! `(weight, link id)` wins, so the table is a pure function of the
//! topology.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::link::LinkId;
use crate::node::NodeId;

/// All-pairs next-hop table: `next_hop(from, to)` is the link `from` should
/// forward on to reach `to` by a shortest path.
#[derive(Debug, Clone)]
pub struct NextHops {
    n: usize,
    /// `table[from * n + to]` = outgoing link, `None` when unreachable or
    /// `from == to`.
    table: Vec<Option<LinkId>>,
    /// `dist[from * n + to]` = shortest-path weight, `u64::MAX` when
    /// unreachable.
    dist: Vec<u64>,
}

impl NextHops {
    /// Computes the table from an edge list `(a, b, link, weight)`.
    ///
    /// Links are bidirectional. Weights must be positive.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero (zero-weight cycles break Dijkstra's
    /// invariants) or an endpoint is out of range.
    pub fn compute(n: usize, links: &[(NodeId, NodeId, LinkId, u64)]) -> Self {
        let mut adj: Vec<Vec<(NodeId, LinkId, u64)>> = vec![Vec::new(); n];
        for &(a, b, id, w) in links {
            assert!(w > 0, "link weights must be positive");
            assert!(a.0 < n && b.0 < n, "endpoint out of range");
            adj[a.0].push((b, id, w));
            adj[b.0].push((a, id, w));
        }
        // Deterministic neighbour order.
        for neighbours in &mut adj {
            neighbours.sort_by_key(|&(_, id, w)| (w, id));
        }
        let mut table = vec![None; n * n];
        let mut dist = vec![u64::MAX; n * n];
        for src in 0..n {
            Self::dijkstra(
                src,
                &adj,
                &mut table[src * n..(src + 1) * n],
                &mut dist[src * n..(src + 1) * n],
            );
        }
        NextHops { n, table, dist }
    }

    /// Dijkstra from `src`; records, for each destination, the *first* link
    /// out of `src` on the shortest path.
    fn dijkstra(
        src: usize,
        adj: &[Vec<(NodeId, LinkId, u64)>],
        first_link: &mut [Option<LinkId>],
        dist: &mut [u64],
    ) {
        let n = adj.len();
        let mut done = vec![false; n];
        dist[src] = 0;
        // Heap entries: (distance, node, first link taken out of src).
        let mut heap: BinaryHeap<Reverse<(u64, usize, Option<LinkId>)>> = BinaryHeap::new();
        heap.push(Reverse((0, src, None)));
        while let Some(Reverse((d, u, first))) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            first_link[u] = first;
            for &(v, link, w) in &adj[u] {
                let nd = d + w;
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    let f = if u == src { Some(link) } else { first };
                    heap.push(Reverse((nd, v.0, f)));
                }
            }
        }
    }

    /// The link `from` forwards on towards `to`; `None` if unreachable or
    /// `from == to`.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.table[from.0 * self.n + to.0]
    }

    /// Shortest-path weight from `from` to `to`; `None` if unreachable.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u64> {
        let d = self.dist[from.0 * self.n + to.0];
        (d != u64::MAX).then_some(d)
    }

    /// Number of nodes the table covers.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId(i)
    }

    fn lid(i: usize) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn line_routes_through_neighbours() {
        // 0 -l0- 1 -l1- 2 -l2- 3
        let links = [
            (nid(0), nid(1), lid(0), 1),
            (nid(1), nid(2), lid(1), 1),
            (nid(2), nid(3), lid(2), 1),
        ];
        let nh = NextHops::compute(4, &links);
        assert_eq!(nh.next_hop(nid(0), nid(3)), Some(lid(0)));
        assert_eq!(nh.next_hop(nid(1), nid(3)), Some(lid(1)));
        assert_eq!(nh.next_hop(nid(2), nid(3)), Some(lid(2)));
        assert_eq!(nh.next_hop(nid(3), nid(0)), Some(lid(2)));
        assert_eq!(nh.next_hop(nid(0), nid(0)), None);
        assert_eq!(nh.distance(nid(0), nid(3)), Some(3));
    }

    #[test]
    fn picks_shorter_of_two_paths() {
        // 0 -(w1)- 1 -(w1)- 3 and 0 -(w5)- 2 -(w1)- 3.
        let links = [
            (nid(0), nid(1), lid(0), 1),
            (nid(1), nid(3), lid(1), 1),
            (nid(0), nid(2), lid(2), 5),
            (nid(2), nid(3), lid(3), 1),
        ];
        let nh = NextHops::compute(4, &links);
        assert_eq!(nh.next_hop(nid(0), nid(3)), Some(lid(0)));
        assert_eq!(nh.distance(nid(0), nid(3)), Some(2));
    }

    #[test]
    fn disconnected_components_are_unreachable() {
        let links = [(nid(0), nid(1), lid(0), 1)];
        let nh = NextHops::compute(4, &links);
        assert_eq!(nh.next_hop(nid(0), nid(2)), None);
        assert_eq!(nh.distance(nid(0), nid(2)), None);
        assert_eq!(nh.next_hop(nid(2), nid(3)), None);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost paths 0->1->3 and 0->2->3; the smaller link id from
        // node 0 must win regardless of edge-list order.
        let forward = [
            (nid(0), nid(1), lid(0), 1),
            (nid(1), nid(3), lid(1), 1),
            (nid(0), nid(2), lid(2), 1),
            (nid(2), nid(3), lid(3), 1),
        ];
        let mut reversed = forward;
        reversed.reverse();
        let a = NextHops::compute(4, &forward);
        let b = NextHops::compute(4, &reversed);
        assert_eq!(a.next_hop(nid(0), nid(3)), b.next_hop(nid(0), nid(3)));
        assert_eq!(a.next_hop(nid(0), nid(3)), Some(lid(0)));
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = NextHops::compute(2, &[(nid(0), nid(1), lid(0), 0)]);
    }

    #[test]
    fn star_topology_routes_through_hub() {
        // Hub is node 0; leaves 1..=4.
        let links: Vec<_> = (1..5).map(|i| (nid(0), nid(i), lid(i - 1), 1)).collect();
        let nh = NextHops::compute(5, &links);
        for i in 1..5 {
            for j in 1..5 {
                if i != j {
                    assert_eq!(nh.next_hop(nid(i), nid(j)), Some(lid(i - 1)));
                    assert_eq!(nh.distance(nid(i), nid(j)), Some(2));
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random connected graphs: next-hop tables must route every pair, and
    /// following next hops must reach the destination in ≤ n steps.
    fn arb_connected_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, LinkId, u64)>)> {
        (2usize..20).prop_flat_map(|n| {
            // A random spanning tree guarantees connectivity; extra random
            // edges add alternative paths.
            let tree = proptest::collection::vec(any::<u64>(), n - 1);
            let extras = proptest::collection::vec((0..n, 0..n, 1u64..10), 0..n);
            (Just(n), tree, extras).prop_map(|(n, parents, extras)| {
                let mut links = Vec::new();
                for i in 1..n {
                    let parent = (parents[i - 1] % i as u64) as usize;
                    links.push((
                        NodeId(i),
                        NodeId(parent),
                        LinkId(links.len()),
                        1 + parents[i - 1] % 5,
                    ));
                }
                for (a, b, w) in extras {
                    if a != b {
                        links.push((NodeId(a), NodeId(b), LinkId(links.len()), w));
                    }
                }
                (n, links)
            })
        })
    }

    proptest! {
        #[test]
        fn next_hops_always_converge((n, links) in arb_connected_graph()) {
            let nh = NextHops::compute(n, &links);
            // Adjacency for walking.
            for from in 0..n {
                for to in 0..n {
                    if from == to {
                        continue;
                    }
                    let mut cur = from;
                    let mut steps = 0;
                    while cur != to {
                        let link = nh.next_hop(NodeId(cur), NodeId(to))
                            .expect("connected graph must route");
                        let (a, b, _, _) = links[link.0];
                        cur = if a.0 == cur { b.0 } else { a.0 };
                        steps += 1;
                        prop_assert!(steps <= n, "routing loop from {} to {}", from, to);
                    }
                }
            }
        }

        #[test]
        fn distances_satisfy_triangle_inequality((n, links) in arb_connected_graph()) {
            let nh = NextHops::compute(n, &links);
            for &(a, b, _, w) in &links {
                for dst in 0..n {
                    let da = nh.distance(a, NodeId(dst)).unwrap();
                    let db = nh.distance(b, NodeId(dst)).unwrap();
                    prop_assert!(da <= db + w);
                    prop_assert!(db <= da + w);
                }
            }
        }
    }
}
