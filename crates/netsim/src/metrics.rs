//! Counters and time series for experiment output.
//!
//! Metrics are intentionally simple: named `u64` counters (optionally keyed
//! by a subject such as a node id) and named `(time, value)` series. The
//! experiment harness reads them after a run to print the paper's tables
//! and figures. None of this sits on the per-packet fast path of the
//! protocol — routers keep their own dense counters — so ordered maps are
//! fine, and they make every read and merge deterministic by construction:
//! metric values flow into `RunRecord`s, so iteration order here is
//! record-visible.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Simulation-wide metrics sink.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    keyed: BTreeMap<(&'static str, u64), u64>,
    series: BTreeMap<&'static str, Vec<(SimTime, f64)>>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `v` to the global counter `name`.
    pub fn inc(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Adds `v` to counter `name` keyed by `key` (e.g. a node id).
    pub fn inc_keyed(&mut self, name: &'static str, key: u64, v: u64) {
        *self.keyed.entry((name, key)).or_insert(0) += v;
    }

    /// Reads a global counter (0 if never written).
    pub fn get(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a keyed counter (0 if never written).
    pub fn get_keyed(&self, name: &'static str, key: u64) -> u64 {
        self.keyed.get(&(name, key)).copied().unwrap_or(0)
    }

    /// Sum of a keyed counter over all keys.
    pub fn sum_keyed(&self, name: &'static str) -> u64 {
        self.keyed
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// All `(key, value)` pairs of a keyed counter, sorted by key.
    pub fn keyed_entries(&self, name: &'static str) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .keyed
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(&(_, k), &val)| (k, val))
            .collect();
        v.sort_unstable();
        v
    }

    /// Appends a sample to the series `name`.
    pub fn record(&mut self, name: &'static str, t: SimTime, value: f64) {
        self.series.entry(name).or_default().push((t, value));
    }

    /// Reads a series (empty slice if never written).
    pub fn series(&self, name: &'static str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Merges `other` into `self`: counters add, series append in the order
    /// given. Sharded simulations drain per-shard sinks into one master
    /// sink at every run boundary, always in shard-id order, and the maps
    /// iterate in key order, so the merged result is deterministic.
    pub fn absorb(&mut self, other: Metrics) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (key, v) in other.keyed {
            *self.keyed.entry(key).or_insert(0) += v;
        }
        for (name, samples) in other.series {
            self.series.entry(name).or_default().extend(samples);
        }
    }

    /// Maximum value seen in a series, if non-empty.
    pub fn series_max(&self, name: &'static str) -> Option<f64> {
        self.series(name)
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(m) if v > m => v,
                    Some(m) => m,
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.get("x"), 0);
        m.inc("x", 2);
        m.inc("x", 3);
        assert_eq!(m.get("x"), 5);
    }

    #[test]
    fn keyed_counters_are_independent() {
        let mut m = Metrics::new();
        m.inc_keyed("drops", 1, 10);
        m.inc_keyed("drops", 2, 20);
        m.inc_keyed("other", 1, 99);
        assert_eq!(m.get_keyed("drops", 1), 10);
        assert_eq!(m.get_keyed("drops", 2), 20);
        assert_eq!(m.get_keyed("drops", 3), 0);
        assert_eq!(m.sum_keyed("drops"), 30);
        assert_eq!(m.keyed_entries("drops"), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn absorb_merges_counters_and_appends_series() {
        let mut a = Metrics::new();
        a.inc("x", 1);
        a.inc_keyed("k", 7, 2);
        a.record("s", SimTime(1), 1.0);
        let mut b = Metrics::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.inc_keyed("k", 7, 3);
        b.record("s", SimTime(2), 2.0);
        a.absorb(b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get_keyed("k", 7), 5);
        assert_eq!(a.series("s"), &[(SimTime(1), 1.0), (SimTime(2), 2.0)]);
    }

    #[test]
    fn series_record_and_max() {
        let mut m = Metrics::new();
        assert!(m.series("bw").is_empty());
        assert_eq!(m.series_max("bw"), None);
        m.record("bw", SimTime(1), 1.5);
        m.record("bw", SimTime(2), 3.0);
        m.record("bw", SimTime(3), 2.0);
        assert_eq!(m.series("bw").len(), 3);
        assert_eq!(m.series_max("bw"), Some(3.0));
    }
}
