//! The node abstraction and the context handle nodes act through.
//!
//! A [`Node`] is any event-driven state machine attached to the network:
//! end hosts, AITF border routers, pushback routers, traffic sources. The
//! simulator owns the nodes; during a handler call the node receives a
//! [`Context`] that lets it read the clock, send packets, arm timers, draw
//! randomness and bump metrics — everything it may legally do to the world.

use std::any::Any;

use aitf_packet::Packet;
use rand::rngs::StdRng;

use crate::link::LinkId;
use crate::metrics::Metrics;
use crate::sim::SimCore;
use crate::time::{SimDuration, SimTime};

/// Index of a node in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Marker supertrait that makes nodes `Send` in default builds, so shard
/// workers of a partitioned simulation can run on threads. The `trace`
/// feature's tracer handles are `Rc`-based, so traced builds drop the
/// bound — sharded runs then execute their shards serially on one thread,
/// with identical results (the window protocol is thread-count
/// independent). A blanket impl covers every eligible type; node authors
/// never implement this by hand.
#[cfg(not(feature = "trace"))]
pub trait MaybeSend: Send {}
#[cfg(not(feature = "trace"))]
impl<T: Send + ?Sized> MaybeSend for T {}

/// Non-`trace` builds bound this by `Send`; see the other definition.
#[cfg(feature = "trace")]
pub trait MaybeSend {}
#[cfg(feature = "trace")]
impl<T: ?Sized> MaybeSend for T {}

/// An event-driven participant in the simulated network.
///
/// Handlers must not block or sleep; they react to one event and return.
/// The `as_any` hooks allow experiments to downcast installed nodes and read
/// their state after a run (e.g. a victim's goodput counters).
pub trait Node: MaybeSend + 'static {
    /// Called once when the simulation starts, in node-id order; sources
    /// typically arm their first timer here.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// A packet arrived on `link`.
    fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>);

    /// A timer armed with [`Context::set_timer`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// The profiling subsystem this node's dispatches are attributed to by
    /// default. Only consulted when the simulator is built with the
    /// `trace` feature; handlers can refine the class mid-dispatch through
    /// [`Context::profile_subsystem`]. Hosts and generic nodes default to
    /// [`aitf_trace::Subsystem::HostApp`]; router nodes override this.
    fn subsystem(&self) -> aitf_trace::Subsystem {
        aitf_trace::Subsystem::HostApp
    }

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the `as_any`/`as_any_mut` boilerplate for a node type.
///
/// # Examples
///
/// ```
/// use aitf_netsim::{impl_node_any, Context, LinkId, Node};
/// use aitf_packet::Packet;
///
/// struct Sink;
///
/// impl Node for Sink {
///     fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}
///     impl_node_any!();
/// }
/// ```
#[macro_export]
macro_rules! impl_node_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

/// The capability handle a node acts through during an event handler.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) core: &'a mut SimCore,
}

impl Context<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// The id of the node being dispatched.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends `packet` out on `link`.
    ///
    /// Returns `true` if the link accepted the packet (queued or started
    /// transmission), `false` if it was dropped at the queue or an
    /// administrative block.
    ///
    /// # Panics
    ///
    /// Panics if this node is not an endpoint of `link`.
    pub fn send(&mut self, link: LinkId, packet: Packet) -> bool {
        self.core.send_from(self.node, link, packet)
    }

    /// Arms a one-shot timer that calls [`Node::on_timer`] with `token`
    /// after `delay`.
    ///
    /// Timers cannot be cancelled; nodes ignore stale tokens instead (the
    /// standard discrete-event idiom — cheap and deterministic).
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.core.schedule_timer(self.node, delay, token);
    }

    /// The deterministic RNG. One stream per simulation; a sharded run
    /// derives one independent stream per shard from `(seed, shard_id)`.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Draws a fresh globally unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        self.core.next_packet_id()
    }

    /// The links attached to this node, in creation order.
    pub fn my_links(&self) -> &[LinkId] {
        self.core.links_of(self.node)
    }

    /// The peer node on `link`.
    ///
    /// # Panics
    ///
    /// Panics if this node is not an endpoint of `link`.
    pub fn peer(&self, link: LinkId) -> NodeId {
        self.core.link(link).peer_of(self.node)
    }

    /// Global metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Reclassifies the event currently being dispatched for subsystem
    /// profiling — e.g. a border router attributing control-plane work to
    /// [`aitf_trace::Subsystem::Escalation`], or an end host attributing a
    /// detection timer to [`aitf_trace::Subsystem::Detector`]. Compiles to
    /// nothing unless the `trace` feature is on.
    #[inline]
    pub fn profile_subsystem(&mut self, subsystem: aitf_trace::Subsystem) {
        #[cfg(feature = "trace")]
        {
            self.core.dispatch_class = subsystem;
        }
        #[cfg(not(feature = "trace"))]
        let _ = subsystem;
    }

    /// Administratively blocks or unblocks the *incoming* direction of
    /// `link` (traffic from the peer towards this node). This is the
    /// enforcement half of AITF disconnection.
    ///
    /// In a sharded simulation the enqueue-side check for this direction
    /// lives in the peer's shard when `link` is a cut link; the change is
    /// applied locally at once and propagated to every other copy at the
    /// next window barrier (one lookahead window of skew, bounded by the
    /// conservative protocol).
    ///
    /// # Panics
    ///
    /// Panics if this node is not an endpoint of `link`.
    pub fn set_incoming_blocked(&mut self, link: LinkId, blocked: bool) {
        self.core
            .set_incoming_blocked_from(self.node, link, blocked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::sim::NetworkBuilder;
    use aitf_packet::{Addr, Header, TrafficClass};

    /// A node that sends one packet to its peer at start and counts
    /// everything it receives.
    struct Echo {
        sent: bool,
        received: u64,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                sent: false,
                received: 0,
            }
        }
    }

    impl Node for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let link = ctx.my_links()[0];
            let id = ctx.next_packet_id();
            let h = Header::udp(Addr::new(1, 0, 0, 1), Addr::new(1, 0, 0, 2), 1, 2);
            ctx.send(link, Packet::data(id, h, TrafficClass::Legit, 100));
            self.sent = true;
        }

        fn on_packet(&mut self, _packet: Packet, _link: LinkId, _ctx: &mut Context<'_>) {
            self.received += 1;
        }

        impl_node_any!();
    }

    #[test]
    fn context_send_and_receive() {
        let mut b = NetworkBuilder::new(1);
        let a = b.add_node();
        let c = b.add_node();
        b.connect(a, c, LinkParams::infinite(SimDuration::from_millis(1)));
        let mut sim = b.build();
        sim.install(a, Box::new(Echo::new()));
        sim.install(c, Box::new(Echo::new()));
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.node_ref::<Echo>(a).unwrap().received, 1);
        assert_eq!(sim.node_ref::<Echo>(c).unwrap().received, 1);
    }

    /// A node that re-arms a timer `n` times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }

        fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
            self.fired_at.push(ctx.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }

        impl_node_any!();
    }

    #[test]
    fn timers_fire_at_exact_intervals() {
        let mut b = NetworkBuilder::new(1);
        let a = b.add_node();
        let mut sim = b.build();
        sim.install(
            a,
            Box::new(Ticker {
                remaining: 2,
                fired_at: Vec::new(),
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        let t = &sim.node_ref::<Ticker>(a).unwrap().fired_at;
        assert_eq!(
            t,
            &vec![
                SimTime(10_000_000),
                SimTime(20_000_000),
                SimTime(30_000_000),
            ]
        );
    }
}
