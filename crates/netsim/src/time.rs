//! Virtual time.
//!
//! The simulator counts nanoseconds in a `u64`, which covers ~584 years of
//! virtual time — far beyond any experiment. Separate types for instants
//! ([`SimTime`]) and spans ([`SimDuration`]) keep the arithmetic honest:
//! instants subtract to spans, spans add to instants, and instants never add
//! to instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns `true` for the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0s")
        } else if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}ms", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An instant of virtual time: nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant, usable as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "since() called with a later instant");
        SimDuration(self.0 - earlier.0)
    }

    /// The span since `earlier`, zero if `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span, clamping at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn duration_rejects_negative_seconds() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn instant_and_span_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(1);
        let t2 = t1 + SimDuration::from_millis(500);
        assert_eq!(t2 - t0, SimDuration::from_millis(1_500));
        assert_eq!(t2.since(t1), SimDuration::from_millis(500));
        assert_eq!(t1 - SimDuration::from_secs(1), t0);
    }

    #[test]
    fn saturating_ops() {
        let t1 = SimTime(100);
        let t2 = SimTime(50);
        assert_eq!(t2.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t2), SimDuration(50));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration(5).saturating_sub(SimDuration(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimDuration::from_secs(60).to_string(), "60s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "50ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_nanos(3).to_string(), "3ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn scaling_ops() {
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn as_accessors() {
        let d = SimDuration::from_millis(1_234);
        assert_eq!(d.as_millis(), 1_234);
        assert!((d.as_secs_f64() - 1.234).abs() < 1e-12);
        let t = SimTime::ZERO + d;
        assert_eq!(t.as_nanos(), d.as_nanos());
    }
}
