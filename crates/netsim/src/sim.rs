//! The simulator: builder, core state and the event loop.
//!
//! [`NetworkBuilder`] assembles nodes and links; [`Simulator`] owns them and
//! runs the event loop. Node objects are installed after building because
//! higher layers (the AITF protocol crate) need the topology — routing
//! tables, link lists — to construct them.
//!
//! # Sharded execution
//!
//! A simulator normally runs as **one shard**: a single event queue, node
//! slice and RNG — exactly the classic single-threaded loop. Applying a
//! [`Partition`] (see [`Simulator::apply_shards`]) before the first run
//! splits the world into K shards, each with its own queue, node slice,
//! local links, metrics sink and `(seed, shard_id)`-derived RNG. Shards
//! advance in lockstep through *conservative windows*: every window spans
//! `[g, g + L)` where `g` is the global earliest pending event and `L` the
//! minimum propagation delay over cut links.
//!
//! **Cut links are owned by the coordinator**, not by either endpoint
//! shard. A node sending on a cut link (or blocking its incoming side)
//! only *stages* the operation; at the window barrier the coordinator
//! replays all staged operations — plus the cut links' own transmission
//! completions — against its authoritative link copies, in global
//! `(time, kind, source shard, staging seq)` order. That keeps every
//! admission decision (queue drops, administrative blocks) exactly where
//! the single-threaded loop makes it: a block staged anywhere in a window
//! drops every later-staged packet, with no one-window skew. Replayed
//! transmissions schedule their `Deliver`s directly into the receiving
//! shard's queue; each such delivery fires at `>= g + L` (the cut delay is
//! at least the lookahead), so the barrier can never deliver into a window
//! already processed. The schedule depends only on event times, never on
//! thread interleaving, so results are bit-reproducible at any worker
//! count (including the serial fallback used by `trace` builds).

use std::cmp::Reverse;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use aitf_packet::Packet;

use crate::event::{EventKind, EventQueue};
use crate::link::{Link, LinkDirection, LinkId, LinkParams, LinkStats};
use crate::metrics::Metrics;
use crate::node::{Context, Node, NodeId};
use crate::partition::{partition, Partition, PartitionError, PartitionSpec};
use crate::time::{SimDuration, SimTime};
use crate::topology::NextHops;

/// Everything in one shard of the simulator except the node objects
/// themselves.
///
/// The split lets a node handler borrow the core mutably (through
/// [`Context`]) while the node itself is temporarily detached — the
/// standard way to give trait-object nodes access to the world without
/// interior mutability.
pub struct SimCore {
    pub(crate) time: SimTime,
    pub(crate) events: EventQueue,
    /// The links this shard owns copies of (all links in single-shard
    /// mode; local links plus inert cut-link stubs in sharded mode — the
    /// stubs answer endpoint/direction queries only, all their state lives
    /// with the coordinator).
    pub(crate) links: Vec<Link>,
    /// Global [`LinkId`] → index into `links`; identity in single-shard
    /// mode, `u32::MAX` for links foreign to this shard.
    link_idx: Vec<u32>,
    /// Global [`LinkId`] → coordinator cut-link index (`u32::MAX` for
    /// shard-local links); empty in single-shard mode, so the hot send
    /// path pays one bounds-checked lookup that always misses.
    cut_of: Arc<Vec<u32>>,
    /// Cut-link operations staged during the current window, drained by
    /// the coordinator's barrier replay.
    staged_cut: Vec<StagedCutOp>,
    /// Monotone staging counter; the canonical replay order's tie-breaker
    /// within this shard.
    staged_seq: u64,
    pub(crate) node_links: Arc<Vec<Vec<LinkId>>>,
    pub(crate) metrics: Metrics,
    pub(crate) rng: StdRng,
    next_pkt_id: u64,
    /// High bits ORed into fresh packet ids — the shard tag that keeps ids
    /// globally unique without cross-shard coordination (0 when single).
    pkt_tag: u64,
    dispatched_events: u64,
    /// Per-subsystem wall-time buckets (pure telemetry, like `run_wall`).
    #[cfg(feature = "trace")]
    pub(crate) profile: aitf_trace::SubsystemProfile,
    /// The subsystem the event currently being dispatched is attributed
    /// to; seeded from the event kind / node class, refined by handlers
    /// through [`Context::profile_subsystem`].
    #[cfg(feature = "trace")]
    pub(crate) dispatch_class: aitf_trace::Subsystem,
}

/// A cut-link operation staged in a shard, replayed by the coordinator at
/// the next window barrier.
struct StagedCutOp {
    time: SimTime,
    /// Produce time of the staging dispatch — the heap key the operation
    /// would have run under in a single-threaded loop (the dispatch *is*
    /// the operation: an enqueue or a blocked-flag flip happens inline).
    ptime: SimTime,
    /// Chain key of the staging dispatch (see [`crate::event`] docs).
    chain: u64,
    seq: u64,
    /// Index into the coordinator's cut-link vector.
    cut: u32,
    dir: LinkDirection,
    op: CutOp,
}

enum CutOp {
    /// A node handed a packet to the link ([`SimCore::send_from`]).
    Enqueue(Packet),
    /// A node blocked or unblocked the direction
    /// ([`Context::set_incoming_blocked`]).
    SetBlocked(bool),
}

impl SimCore {
    #[inline]
    fn slot(&self, id: LinkId) -> usize {
        let s = self.link_idx[id.0];
        debug_assert!(s != u32::MAX, "link {id:?} is not local to this shard");
        s as usize
    }

    /// Sends `packet` from `node` over `link`, returning link acceptance.
    ///
    /// On a cut link of a sharded run the enqueue is staged for the
    /// coordinator's barrier replay and `true` is returned: admission
    /// control (queue drops, administrative blocks) runs in the replay,
    /// where the sender can no longer observe the verdict. That is safe
    /// because link acceptance is pure telemetry — no node or traffic app
    /// in the tree branches on it.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `link`.
    pub fn send_from(&mut self, node: NodeId, link: LinkId, packet: Packet) -> bool {
        let slot = self.slot(link);
        let dir = self.links[slot].dir_from(node);
        if let Some(&cut) = self.cut_of.get(link.0) {
            if cut != u32::MAX {
                self.stage_cut(cut, dir, CutOp::Enqueue(packet));
                return true;
            }
        }
        let now = self.time;
        self.links[slot].enqueue(now, dir, packet, &mut self.events)
    }

    fn stage_cut(&mut self, cut: u32, dir: LinkDirection, op: CutOp) {
        let seq = self.staged_seq;
        self.staged_seq += 1;
        let time = self.time;
        let (ptime, chain) = self.events.produce_ctx();
        self.staged_cut.push(StagedCutOp {
            time,
            ptime,
            chain: chain.unwrap_or(time.0),
            seq,
            cut,
            dir,
            op,
        });
    }

    /// Drains the operations staged for the coordinator's barrier replay.
    fn take_staged_cut(&mut self) -> Vec<StagedCutOp> {
        std::mem::take(&mut self.staged_cut)
    }

    /// Arms a timer for `node`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.events
            .schedule(self.time + delay, EventKind::Timer { node, token });
    }

    /// Links attached to `node`, in creation order.
    pub fn links_of(&self, node: NodeId) -> &[LinkId] {
        &self.node_links[node.0]
    }

    /// Immutable link access.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[self.slot(id)]
    }

    /// Mutable link access.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        let slot = self.slot(id);
        &mut self.links[slot]
    }

    /// Draws a fresh globally unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        debug_assert!(id < 1 << 48, "per-shard packet id space exhausted");
        self.pkt_tag | id
    }

    /// Blocks or unblocks the direction of `link` that carries traffic
    /// *into* `node`. On a cut link of a sharded run the change is staged
    /// for the coordinator's barrier replay, where it takes effect ahead
    /// of every later-staged packet — exactly the single-threaded
    /// semantics.
    pub(crate) fn set_incoming_blocked_from(&mut self, node: NodeId, link: LinkId, blocked: bool) {
        let slot = self.slot(link);
        let peer = self.links[slot].peer_of(node);
        let dir = self.links[slot].dir_from(peer);
        if let Some(&cut) = self.cut_of.get(link.0) {
            if cut != u32::MAX {
                self.stage_cut(cut, dir, CutOp::SetBlocked(blocked));
                return;
            }
        }
        self.links[slot].set_blocked(dir, blocked);
    }
}

/// Builds the static topology: nodes (as slots) and links.
///
/// # Examples
///
/// ```
/// use aitf_netsim::{LinkParams, NetworkBuilder, SimDuration};
///
/// let mut b = NetworkBuilder::new(7);
/// let n0 = b.add_node();
/// let n1 = b.add_node();
/// let l = b.connect(n0, n1, LinkParams::infinite(SimDuration::from_millis(1)));
/// let sim = b.build();
/// assert_eq!(sim.link_endpoints(l), (n0, n1));
/// ```
pub struct NetworkBuilder {
    node_count: usize,
    links: Vec<(NodeId, NodeId, LinkParams)>,
    seed: u64,
}

impl NetworkBuilder {
    /// Creates a builder; `seed` drives every random decision in the run.
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            node_count: 0,
            links: Vec::new(),
            seed,
        }
    }

    /// Reserves a node slot and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Number of node slots reserved so far.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Connects two nodes with a link.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or if `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert!(
            a.0 < self.node_count && b.0 < self.node_count,
            "unknown node"
        );
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len());
        self.links.push((a, b, params));
        id
    }

    /// Finalises the topology into a runnable [`Simulator`] with empty node
    /// slots; install nodes with [`Simulator::install`].
    pub fn build(self) -> Simulator {
        let mut node_links = vec![Vec::new(); self.node_count];
        let mut links = Vec::with_capacity(self.links.len());
        for (i, (a, b, params)) in self.links.into_iter().enumerate() {
            let id = LinkId(i);
            node_links[a.0].push(id);
            node_links[b.0].push(id);
            links.push(Link::new(id, a, b, params));
        }
        let link_total = links.len();
        Simulator {
            shards: vec![Shard {
                core: SimCore {
                    time: SimTime::ZERO,
                    events: EventQueue::new(),
                    links,
                    link_idx: (0..link_total as u32).collect(),
                    cut_of: Arc::new(Vec::new()),
                    staged_cut: Vec::new(),
                    staged_seq: 0,
                    node_links: Arc::new(node_links),
                    metrics: Metrics::new(),
                    rng: StdRng::seed_from_u64(self.seed),
                    next_pkt_id: 0,
                    pkt_tag: 0,
                    dispatched_events: 0,
                    #[cfg(feature = "trace")]
                    profile: aitf_trace::SubsystemProfile::default(),
                    #[cfg(feature = "trace")]
                    dispatch_class: aitf_trace::Subsystem::Queue,
                },
                nodes: (0..self.node_count).map(|_| None).collect(),
            }],
            shard_of: Arc::new(vec![0; self.node_count]),
            lookahead: None,
            cut_links: Vec::new(),
            cut_of: Arc::new(Vec::new()),
            cut_dispatched: 0,
            link_total,
            seed: self.seed,
            time: SimTime::ZERO,
            started: false,
            merged_metrics: Metrics::new(),
            #[cfg(feature = "trace")]
            merged_profile: aitf_trace::SubsystemProfile::default(),
            run_wall: std::time::Duration::ZERO,
        }
    }
}

/// One worker unit of the simulator: an event queue + node slice. The node
/// vector is full-length in every shard; foreign slots stay `None`.
struct Shard {
    core: SimCore,
    nodes: Vec<Option<Box<dyn Node>>>,
}

impl Shard {
    /// Dispatches pending events with time `< bound` (`<= bound` when
    /// `inclusive`), in `(time, seq)` order. This *is* the classic event
    /// loop; single-shard runs call it once with `inclusive = true`.
    fn run_window(&mut self, bound: SimTime, inclusive: bool) {
        while let Some(next) = self.core.events.peek_time() {
            let past = if inclusive {
                next > bound
            } else {
                next >= bound
            };
            if past {
                break;
            }
            let ev = self.core.events.pop().expect("peeked event exists");
            self.core.events.set_ctx(ev.time, Some(ev.chain));
            self.core.time = ev.time;
            self.core.dispatched_events += 1;
            #[cfg(feature = "trace")]
            // detlint::allow(wall-clock): per-subsystem wall profiling, trace builds only — never enters simulation state
            let ev_start = std::time::Instant::now();
            match ev.kind {
                EventKind::Deliver { node, link, packet } => {
                    self.dispatch_packet(node, link, packet);
                }
                EventKind::LinkTxDone { link, dir } => {
                    #[cfg(feature = "trace")]
                    {
                        self.core.dispatch_class = aitf_trace::Subsystem::Link;
                    }
                    let now = self.core.time;
                    // Split borrow: the link mutates itself and schedules
                    // follow-up events; nodes are not involved.
                    let slot = self.core.slot(link);
                    let SimCore { links, events, .. } = &mut self.core;
                    links[slot].on_tx_done(now, dir, events);
                }
                EventKind::Timer { node, token } => {
                    self.dispatch_timer(node, token);
                }
            }
            #[cfg(feature = "trace")]
            self.core.profile.record(
                self.core.dispatch_class,
                ev_start.elapsed().as_nanos() as u64,
            );
        }
    }

    fn dispatch_packet(&mut self, node: NodeId, link: LinkId, packet: Packet) {
        let mut n = self.nodes[node.0].take().expect("installed node");
        #[cfg(feature = "trace")]
        {
            self.core.dispatch_class = n.subsystem();
        }
        let mut ctx = Context {
            node,
            core: &mut self.core,
        };
        n.on_packet(packet, link, &mut ctx);
        self.nodes[node.0] = Some(n);
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let mut n = self.nodes[node.0].take().expect("installed node");
        #[cfg(feature = "trace")]
        {
            self.core.dispatch_class = n.subsystem();
        }
        let mut ctx = Context {
            node,
            core: &mut self.core,
        };
        n.on_timer(token, &mut ctx);
        self.nodes[node.0] = Some(n);
    }
}

/// Derives the RNG seed of one shard from the simulation seed (splitmix64
/// over the pair, so shard streams are decorrelated).
fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A coordinator-owned cut link: the authoritative [`Link`] copy (queues,
/// blocked flags, stats) plus its per-direction pending transmission
/// completion. All operations on a cut link run in the coordinator's
/// barrier replay; the endpoint shards only hold inert stubs.
struct CutLink {
    link: Link,
    /// The scheduled `LinkTxDone` per direction, if a transmission is in
    /// flight — the coordinator's stand-in for the event a shard queue
    /// would hold, carrying the same ordering keys that event would.
    pending_txdone: [Option<PendingTx>; 2],
}

/// A cut link's in-flight transmission completion: firing time plus the
/// heap ordering keys the `LinkTxDone` event would carry in a shard queue.
#[derive(Clone, Copy)]
struct PendingTx {
    time: SimTime,
    ptime: SimTime,
    chain: u64,
}

/// The deterministic discrete-event simulator.
pub struct Simulator {
    /// The shards; exactly one unless [`Simulator::apply_shards`] split the
    /// world. Single-shard mode runs the historical loop verbatim.
    shards: Vec<Shard>,
    /// Owning shard of every node (all zeros when single).
    shard_of: Arc<Vec<u16>>,
    /// Conservative window length: min propagation delay over cut links.
    /// `None` when single-sharded or when no links cross shards.
    lookahead: Option<SimDuration>,
    /// Coordinator-owned authoritative copies of the cut links, in link id
    /// order (empty when single).
    cut_links: Vec<CutLink>,
    /// Global [`LinkId`] → `cut_links` index (`u32::MAX` when not cut);
    /// shared with every shard core. Empty when single.
    cut_of: Arc<Vec<u32>>,
    /// Transmission completions dispatched by the coordinator's cut-link
    /// replay, counted alongside the shard totals so sharded event counts
    /// match the single-threaded loop exactly.
    cut_dispatched: u64,
    /// Total number of distinct links in the topology (cut links have a
    /// copy in both endpoint shards).
    link_total: usize,
    /// Builder seed, retained for per-shard RNG derivation.
    seed: u64,
    time: SimTime,
    started: bool,
    /// Merged metrics of a sharded run; single-shard mode reads the
    /// shard's own sink directly.
    merged_metrics: Metrics,
    #[cfg(feature = "trace")]
    merged_profile: aitf_trace::SubsystemProfile,
    /// Wall-clock time spent inside the event loop — pure telemetry, never
    /// an input to the simulation (results stay bit-deterministic). One
    /// coordinator-level clock even when sharded.
    run_wall: std::time::Duration,
}

impl Simulator {
    #[inline]
    fn is_sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Coordinator cut-link index of `id`, if it crosses shards.
    #[inline]
    fn cut_index(&self, id: LinkId) -> Option<usize> {
        match self.cut_of.get(id.0) {
            Some(&c) if c != u32::MAX => Some(c as usize),
            _ => None,
        }
    }

    /// The authoritative copy of `link`: the coordinator's for a cut link,
    /// else the owning shard's (shard 0 in single mode).
    fn link_any(&self, id: LinkId) -> &Link {
        if let Some(c) = self.cut_index(id) {
            return &self.cut_links[c].link;
        }
        for s in &self.shards {
            let idx = s.core.link_idx[id.0];
            if idx != u32::MAX {
                return &s.core.links[idx as usize];
            }
        }
        panic!("unknown link {id:?}")
    }

    /// Installs the node object for slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied or out of range.
    pub fn install(&mut self, id: NodeId, node: Box<dyn Node>) {
        let shard = self.shard_of[id.0] as usize;
        let slot = &mut self.shards[shard].nodes[id.0];
        assert!(slot.is_none(), "node {id:?} installed twice");
        *slot = Some(node);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.shards[0].nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_total
    }

    /// Number of shards the event loop runs as (1 = classic single loop).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead of a sharded run (`None` when single or
    /// when no links cross shards).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// The owning shard of `node` (0 when single).
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.0] as usize
    }

    /// The endpoints of `link`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        self.link_any(link).endpoints()
    }

    /// Traffic statistics of one direction of `link`, read from the
    /// authoritative copy (the coordinator's for a cut link, else the one
    /// shard holding both endpoints).
    pub fn link_stats(&self, link: LinkId, dir: LinkDirection) -> &LinkStats {
        self.link_any(link).stats(dir)
    }

    /// Statistics of the direction of `link` that carries traffic *into*
    /// `node`.
    pub fn link_stats_towards(&self, link: LinkId, node: NodeId) -> &LinkStats {
        let l = self.link_any(link);
        self.link_stats(link, l.dir_from(l.peer_of(node)))
    }

    /// The links attached to `node`.
    pub fn links_of(&self, node: NodeId) -> &[LinkId] {
        self.shards[0].core.links_of(node)
    }

    /// Read access to a link (queue depths, in-flight state, stats).
    ///
    /// For a cut link of a sharded run this returns the coordinator's
    /// authoritative copy — the one every operation is replayed against.
    pub fn link(&self, id: LinkId) -> &Link {
        self.link_any(id)
    }

    /// The metrics sink (merged across shards at run boundaries).
    pub fn metrics(&self) -> &Metrics {
        if self.is_sharded() {
            &self.merged_metrics
        } else {
            &self.shards[0].core.metrics
        }
    }

    /// Mutable metrics access (for experiment probes between runs).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        if self.is_sharded() {
            self.drain_shard_state();
            &mut self.merged_metrics
        } else {
            &mut self.shards[0].core.metrics
        }
    }

    /// Number of events dispatched so far — summed over shards, plus the
    /// transmission completions the coordinator's cut-link replay ran
    /// (diagnostics / benches).
    pub fn dispatched_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.core.dispatched_events)
            .sum::<u64>()
            + self.cut_dispatched
    }

    /// Returns `true` once [`Simulator::start`] has run (explicitly or via
    /// the first `run_*` call) — dynamic-world layers use this to decide
    /// between build-time installation and runtime activation.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Number of events currently pending across all shards, including the
    /// cut-link transmission completions the coordinator holds.
    pub fn pending_events(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.core.events.len())
            .sum::<usize>()
            + self
                .cut_links
                .iter()
                .map(|c| c.pending_txdone.iter().flatten().count())
                .sum::<usize>()
    }

    /// The firing time of the earliest pending event, if any. Never less
    /// than [`Simulator::now`]: the event loop dispatches in time order, so
    /// a stale event would be a scheduling bug.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.core.events.peek_time())
            .chain(self.pending_txdone_times())
            .min()
    }

    /// The scheduled cut-link transmission completions the coordinator
    /// holds (empty when single).
    fn pending_txdone_times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.cut_links
            .iter()
            .flat_map(|c| c.pending_txdone.iter().flatten().map(|p| p.time))
    }

    /// Administratively blocks or unblocks one direction of `link` from
    /// *outside* the event loop — the runtime detach/attach hook dynamic
    /// worlds use to retire and revive endpoints mid-run. Identical in
    /// effect to a node calling [`Context::set_incoming_blocked`]; takes
    /// effect for every packet enqueued after the call. Applies to the
    /// authoritative copy immediately (safe between runs).
    pub fn set_link_blocked(&mut self, link: LinkId, dir: LinkDirection, blocked: bool) {
        if let Some(c) = self.cut_index(link) {
            self.cut_links[c].link.set_blocked(dir, blocked);
            return;
        }
        let mut found = false;
        for s in &mut self.shards {
            let idx = s.core.link_idx[link.0];
            if idx != u32::MAX {
                s.core.links[idx as usize].set_blocked(dir, blocked);
                found = true;
            }
        }
        assert!(found, "unknown link {link:?}");
    }

    /// Returns `true` if the direction of `link` is administratively
    /// blocked (read from the authoritative copy).
    pub fn is_link_blocked(&self, link: LinkId, dir: LinkDirection) -> bool {
        self.link_any(link).is_blocked(dir)
    }

    /// Runs `f` with the node in slot `id` and a live [`Context`] —
    /// the runtime activation hook: higher layers use it between `run_*`
    /// segments to drive a node outside event dispatch (install a traffic
    /// app mid-run, restart a reattached host's apps). The mutation happens
    /// at the current virtual time, so determinism is preserved as long as
    /// callers invoke it at schedule-independent times.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never installed.
    pub fn with_node_ctx<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Context<'_>) -> R,
    ) -> R {
        let shard = &mut self.shards[self.shard_of[id.0] as usize];
        let mut n = shard.nodes[id.0].take().expect("installed node");
        let now = shard.core.time;
        shard.core.events.set_ctx(now, None);
        let mut ctx = Context {
            node: id,
            core: &mut shard.core,
        };
        let r = f(n.as_mut(), &mut ctx);
        shard.nodes[id.0] = Some(n);
        // Cut-link operations staged by `f` (e.g. blocking a cut uplink,
        // sending on one) must reach the authoritative copies before the
        // next run.
        if self.is_sharded() {
            let now = self.time;
            self.replay_cut_links(now, true);
        }
        r
    }

    /// Wall-clock seconds spent inside the event loop so far.
    pub fn run_wall_secs(&self) -> f64 {
        self.run_wall.as_secs_f64()
    }

    /// The per-subsystem wall-time profile accumulated so far, merged over
    /// shards in shard-id order. Empty (all zeros) unless the crate is
    /// built with the `trace` feature — the default build carries no
    /// per-event instrumentation at all.
    pub fn subsystem_profile(&self) -> aitf_trace::SubsystemProfile {
        #[cfg(feature = "trace")]
        {
            if self.is_sharded() {
                let mut p = self.merged_profile;
                for s in &self.shards {
                    p.merge(&s.core.profile);
                }
                p
            } else {
                self.shards[0].core.profile
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            aitf_trace::SubsystemProfile::default()
        }
    }

    /// Events dispatched per wall-clock second of event-loop time — the
    /// simulator's end-to-end throughput telemetry (0 before any run).
    /// Sharded runs sum dispatched events over workers against the one
    /// coordinator wall clock.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.run_wall.as_secs_f64();
        if secs > 0.0 {
            self.dispatched_events() as f64 / secs
        } else {
            0.0
        }
    }

    /// Downcasts the node in slot `id` to a concrete type.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        self.shards[self.shard_of[id.0] as usize].nodes[id.0]
            .as_deref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of the node in slot `id`.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.shards[self.shard_of[id.0] as usize].nodes[id.0]
            .as_deref_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Computes shortest-path next hops between all node pairs, weighting
    /// each link by `weight` (use `|_| 1` for hop count).
    pub fn compute_next_hops(&self, weight: impl Fn(LinkId) -> u64) -> NextHops {
        let links: Vec<(NodeId, NodeId, LinkId, u64)> = (0..self.link_total)
            .map(|i| {
                let id = LinkId(i);
                let (a, b) = self.link_any(id).endpoints();
                (a, b, id, weight(id))
            })
            .collect();
        NextHops::compute(self.node_count(), &links)
    }

    /// Splits the world into at most `k` shards along the group forest in
    /// `spec`, returning the partition actually applied. Must run before
    /// the first `run_*`/`start` call, while the event queue is empty.
    /// `k <= 1` (or a partition that collapses to one shard) leaves the
    /// simulator in its exact single-threaded configuration.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has started, was already partitioned, or
    /// has pending events.
    pub fn apply_shards(
        &mut self,
        k: usize,
        spec: &PartitionSpec,
    ) -> Result<Partition, PartitionError> {
        let links: Vec<(NodeId, NodeId, SimDuration)> = (0..self.link_total)
            .map(|i| {
                let l = self.link_any(LinkId(i));
                let (a, b) = l.endpoints();
                (a, b, l.params().delay)
            })
            .collect();
        let part = partition(k, self.node_count(), &links, spec)?;
        self.apply_partition(&part);
        Ok(part)
    }

    /// Applies a precomputed [`Partition`]; see [`Simulator::apply_shards`].
    pub fn apply_partition(&mut self, part: &Partition) {
        assert!(!self.started, "apply_shards must run before start");
        assert_eq!(self.shards.len(), 1, "simulator is already partitioned");
        assert_eq!(
            part.shard_of.len(),
            self.node_count(),
            "partition covers a different node count"
        );
        if part.shards <= 1 {
            return;
        }
        let k = part.shards;
        let single = self.shards.pop().expect("one shard");
        assert!(
            single.core.events.is_empty(),
            "apply_shards must run before any events are scheduled"
        );
        let SimCore {
            links,
            node_links,
            metrics,
            ..
        } = single.core;
        let node_total = part.shard_of.len();
        let shard_of = Arc::clone(&part.shard_of);
        let mut shards: Vec<Shard> = (0..k)
            .map(|s| {
                let mut events = EventQueue::new();
                events.bind_shard(s as u16, Arc::clone(&shard_of));
                Shard {
                    core: SimCore {
                        time: SimTime::ZERO,
                        events,
                        links: Vec::new(),
                        link_idx: vec![u32::MAX; self.link_total],
                        cut_of: Arc::new(Vec::new()),
                        staged_cut: Vec::new(),
                        staged_seq: 0,
                        node_links: Arc::clone(&node_links),
                        metrics: Metrics::new(),
                        rng: StdRng::seed_from_u64(shard_seed(self.seed, s as u64)),
                        next_pkt_id: 0,
                        pkt_tag: (s as u64) << 48,
                        dispatched_events: 0,
                        #[cfg(feature = "trace")]
                        profile: aitf_trace::SubsystemProfile::default(),
                        #[cfg(feature = "trace")]
                        dispatch_class: aitf_trace::Subsystem::Queue,
                    },
                    nodes: (0..node_total).map(|_| None).collect(),
                }
            })
            .collect();
        // Distribute links. A local link moves into its owning shard; a
        // cut link moves to the coordinator (the authoritative copy every
        // operation is replayed against) and leaves an inert stub in both
        // endpoint shards for endpoint/direction queries — stub state is
        // never read or written.
        let mut cut_links: Vec<CutLink> = Vec::with_capacity(part.cut_links.len());
        let mut cut_of = vec![u32::MAX; self.link_total];
        for link in links {
            let (a, b) = link.endpoints();
            let (sa, sb) = (part.shard_of[a.0] as usize, part.shard_of[b.0] as usize);
            let id = link.id();
            let params = link.params();
            if sa == sb {
                let core = &mut shards[sa].core;
                core.link_idx[id.0] = core.links.len() as u32;
                core.links.push(link);
            } else {
                for s in [sa, sb] {
                    let core = &mut shards[s].core;
                    core.link_idx[id.0] = core.links.len() as u32;
                    core.links.push(Link::new(id, a, b, params));
                }
                cut_of[id.0] = u32::try_from(cut_links.len()).expect("cut count fits u32");
                cut_links.push(CutLink {
                    link,
                    pending_txdone: [None, None],
                });
            }
        }
        debug_assert_eq!(cut_links.len(), part.cut_links.len());
        let cut_of = Arc::new(cut_of);
        for shard in &mut shards {
            shard.core.cut_of = Arc::clone(&cut_of);
        }
        self.cut_links = cut_links;
        self.cut_of = cut_of;
        // Distribute installed nodes to their owning shard.
        for (i, n) in single.nodes.into_iter().enumerate() {
            if let Some(n) = n {
                shards[part.shard_of[i] as usize].nodes[i] = Some(n);
            }
        }
        self.merged_metrics = metrics;
        self.shards = shards;
        self.shard_of = shard_of;
        self.lookahead = part.lookahead;
    }

    /// Calls [`Node::on_start`] on every installed node — in id order when
    /// single, in (shard, id) order when sharded.
    /// Runs automatically on the first `run_*` call if not done explicitly.
    ///
    /// # Panics
    ///
    /// Panics if any node slot was never installed.
    pub fn start(&mut self) {
        assert!(!self.started, "start() called twice");
        for i in 0..self.node_count() {
            let s = self.shard_of[i] as usize;
            assert!(
                self.shards[s].nodes[i].is_some(),
                "node {i} was never installed"
            );
        }
        for shard in &mut self.shards {
            for i in 0..shard.nodes.len() {
                let Some(mut node) = shard.nodes[i].take() else {
                    continue;
                };
                let mut ctx = Context {
                    node: NodeId(i),
                    core: &mut shard.core,
                };
                node.on_start(&mut ctx);
                shard.nodes[i] = Some(node);
            }
        }
        self.started = true;
    }

    /// Runs the event loop until virtual time `t`; the clock ends exactly
    /// at `t` even if the queue drains early.
    pub fn run_until(&mut self, t: SimTime) {
        if !self.started {
            self.start();
        }
        // detlint::allow(wall-clock): events_per_sec wall telemetry — reported in JSON, excluded from deterministic_eq
        let wall_start = std::time::Instant::now();
        if self.is_sharded() {
            self.run_sharded(t);
        } else {
            let shard = &mut self.shards[0];
            shard.run_window(t, true);
            shard.core.time = t;
        }
        self.time = t;
        let elapsed = wall_start.elapsed();
        self.run_wall += elapsed;
        #[cfg(feature = "trace")]
        {
            let nanos = elapsed.as_nanos() as u64;
            if self.is_sharded() {
                self.merged_profile.add_loop_nanos(nanos);
            } else {
                self.shards[0].core.profile.add_loop_nanos(nanos);
            }
        }
    }

    /// The conservative-window scheduler: every iteration processes the
    /// window `[g, g+L)` (clamped inclusively at `t`) in all shards, then
    /// replays the staged cut-link operations at the barrier. `g` counts
    /// the coordinator's pending cut-link transmission completions too, so
    /// a tx-done chain on an otherwise idle cut link still drives windows.
    /// Any cross-shard delivery fires at `>= g + L`, so the barrier can
    /// never deliver into a window already processed.
    fn run_sharded(&mut self, t: SimTime) {
        // Flush operations staged outside any window: `on_start` handlers
        // run during `start()` and may send on cut links.
        let now = self.time;
        self.replay_cut_links(now, true);
        while let Some(next) = self
            .shards
            .iter()
            .filter_map(|s| s.core.events.peek_time())
            .chain(self.pending_txdone_times())
            .min()
        {
            if next > t {
                break;
            }
            let (bound, inclusive) = match self.lookahead {
                Some(l) => {
                    let end = next + l;
                    if end > t {
                        // Final window: processing through `t` stays below
                        // `g + L`, so it is still conservative.
                        (t, true)
                    } else {
                        (end, false)
                    }
                }
                // No cut links: shards are mutually invisible.
                None => (t, true),
            };
            self.run_window_all(bound, inclusive);
            self.replay_cut_links(bound, inclusive);
        }
        for s in &mut self.shards {
            s.core.time = t;
        }
        self.drain_shard_state();
    }

    /// Runs one window in every shard — on worker threads in default
    /// builds, serially under the `trace` feature (tracer handles are not
    /// `Send`). The result is identical either way: the window protocol
    /// never looks at thread interleaving.
    fn run_window_all(&mut self, bound: SimTime, inclusive: bool) {
        #[cfg(not(feature = "trace"))]
        {
            std::thread::scope(|scope| {
                let mut iter = self.shards.iter_mut();
                let first = iter.next().expect("at least one shard");
                for shard in iter {
                    scope.spawn(move || shard.run_window(bound, inclusive));
                }
                // Shard 0 runs on the coordinating thread.
                first.run_window(bound, inclusive);
            });
        }
        #[cfg(feature = "trace")]
        for shard in &mut self.shards {
            shard.run_window(bound, inclusive);
        }
    }

    /// The window barrier: replays every staged cut-link operation from
    /// all shards — enqueues and control changes — against the
    /// coordinator's authoritative link copies, interleaved with the cut
    /// links' own transmission completions, in one global time order.
    ///
    /// The order is `(time, produce time, chain descending, source shard,
    /// staging seq)` — the same key the shard heaps dispatch under (see
    /// [`crate::event`]), with a staged operation carrying its staging
    /// dispatch's keys (the dispatch *is* the operation in a
    /// single-threaded loop) and a pending tx-done carrying the keys the
    /// `LinkTxDone` event would hold in a queue. Each replayed tx-done
    /// counts as one dispatched event (it is one in the single-threaded
    /// loop); enqueues and control changes happen inside their sender's
    /// already-counted dispatch and are not re-counted. `Deliver`s
    /// produced here go directly into the receiving shard's queue;
    /// tx-dones landing past `bound` stay pending for a later window.
    fn replay_cut_links(&mut self, bound: SimTime, inclusive: bool) {
        struct ReplayOp {
            time: SimTime,
            ptime: SimTime,
            chain: u64,
            shard: u16,
            seq: u64,
            cut: u32,
            dir: LinkDirection,
            op: CutOp,
        }
        let mut ops: Vec<ReplayOp> = Vec::new();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            for s in shard.core.take_staged_cut() {
                ops.push(ReplayOp {
                    time: s.time,
                    ptime: s.ptime,
                    chain: s.chain,
                    shard: si as u16,
                    seq: s.seq,
                    cut: s.cut,
                    dir: s.dir,
                    op: s.op,
                });
            }
        }
        let within = |t: SimTime| if inclusive { t <= bound } else { t < bound };
        if ops.is_empty() && !self.pending_txdone_times().any(within) {
            return;
        }
        ops.sort_unstable_by_key(|o| (o.time, o.ptime, Reverse(o.chain), o.shard, o.seq));
        let mut ops = ops.into_iter().peekable();
        let mut scratch = EventQueue::new();
        loop {
            // The earliest due transmission completion across cut links,
            // under the same ordering key the shard heaps use.
            let tx = self
                .cut_links
                .iter()
                .enumerate()
                .flat_map(|(c, cl)| {
                    cl.pending_txdone
                        .iter()
                        .enumerate()
                        .filter_map(move |(d, p)| p.map(|p| (p, c, d)))
                })
                .filter(|&(p, ..)| within(p.time))
                .min_by_key(|&(p, c, d)| (p.time, p.ptime, Reverse(p.chain), c, d));
            let take_tx = match (tx, ops.peek()) {
                (None, None) => break,
                (None, Some(_)) => false,
                (Some(_), None) => true,
                // Ties across every key go to the staged operation: with
                // equal (time, ptime, chain) the single-threaded order is
                // unknowable either way, and favouring the op keeps
                // blocked-flag flips ahead of the completions they race.
                (Some((p, ..)), Some(o)) => {
                    (p.time, p.ptime, Reverse(p.chain)) < (o.time, o.ptime, Reverse(o.chain))
                }
            };
            if take_tx {
                let (p, c, d) = tx.expect("due tx completion");
                let t = p.time;
                let dir = if d == 0 {
                    LinkDirection::AToB
                } else {
                    LinkDirection::BToA
                };
                self.cut_links[c].pending_txdone[d] = None;
                #[cfg(feature = "trace")]
                // detlint::allow(wall-clock): per-subsystem wall profiling, trace builds only — never enters simulation state
                let ev_start = std::time::Instant::now();
                scratch.set_ctx(t, Some(p.chain));
                self.cut_links[c].link.on_tx_done(t, dir, &mut scratch);
                self.cut_dispatched += 1;
                #[cfg(feature = "trace")]
                self.merged_profile.record(
                    aitf_trace::Subsystem::Link,
                    ev_start.elapsed().as_nanos() as u64,
                );
                self.drain_cut_scratch(c, &mut scratch);
            } else {
                let o = ops.next().expect("peeked op exists");
                let cut = o.cut as usize;
                match o.op {
                    CutOp::SetBlocked(b) => {
                        self.cut_links[cut].link.set_blocked(o.dir, b);
                    }
                    CutOp::Enqueue(p) => {
                        // Acceptance is unobservable for staged sends; the
                        // drop accounting lands on the authoritative copy.
                        scratch.set_ctx(o.time, Some(o.chain));
                        self.cut_links[cut]
                            .link
                            .enqueue(o.time, o.dir, p, &mut scratch);
                        self.drain_cut_scratch(cut, &mut scratch);
                    }
                }
            }
        }
    }

    /// Routes the events a replayed cut-link operation produced: tx-dones
    /// become the link's pending completion, `Deliver`s go into the
    /// receiving node's shard queue.
    fn drain_cut_scratch(&mut self, cut: usize, scratch: &mut EventQueue) {
        while let Some(ev) = scratch.pop() {
            match ev.kind {
                EventKind::LinkTxDone { dir, .. } => {
                    let slot = &mut self.cut_links[cut].pending_txdone[dir.index()];
                    debug_assert!(
                        slot.is_none(),
                        "two tx completions pending in one direction"
                    );
                    *slot = Some(PendingTx {
                        time: ev.time,
                        ptime: ev.ptime,
                        chain: ev.chain,
                    });
                }
                EventKind::Deliver { node, link, packet } => {
                    let dst = self.shard_of[node.0] as usize;
                    self.shards[dst].core.events.schedule_produced_at(
                        ev.time,
                        ev.ptime,
                        ev.chain,
                        EventKind::Deliver { node, link, packet },
                    );
                }
                EventKind::Timer { .. } => unreachable!("links never arm timers"),
            }
        }
    }

    /// Drains per-shard metrics (and profiles) into the merged sinks, in
    /// shard-id order. No-op when single.
    fn drain_shard_state(&mut self) {
        if !self.is_sharded() {
            return;
        }
        for s in &mut self.shards {
            let m = std::mem::take(&mut s.core.metrics);
            self.merged_metrics.absorb(m);
            #[cfg(feature = "trace")]
            {
                self.merged_profile.merge(&s.core.profile);
                s.core.profile = aitf_trace::SubsystemProfile::default();
            }
        }
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.time + d;
        self.run_until(t);
    }

    /// Runs until the event queue is empty (only safe when no node re-arms
    /// timers forever), with a hard event-count bound as a loop guard.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_events` fire, which indicates a runaway
    /// schedule.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        if !self.started {
            self.start();
        }
        let start_count = self.dispatched_events();
        while let Some(next) = self.next_event_time() {
            assert!(
                self.dispatched_events() - start_count < max_events,
                "exceeded {max_events} events without quiescing"
            );
            self.run_until(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_node_any;
    use aitf_packet::{Addr, Header, TrafficClass};

    /// Forwards every packet out of every other link; counts receptions.
    struct FloodRelay {
        received: u64,
    }

    impl Node for FloodRelay {
        fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
            self.received += 1;
            // Borrow-safe, allocation-free link iteration: index the slice
            // fresh each step instead of copying it to a Vec (the idiom
            // documented in ARCHITECTURE.md).
            for i in 0..ctx.my_links().len() {
                let l = ctx.my_links()[i];
                if l != link {
                    let mut p = packet.clone();
                    p.header.ttl = match p.header.ttl.checked_sub(1) {
                        Some(t) => t,
                        None => return,
                    };
                    if p.header.ttl > 0 {
                        ctx.send(l, p);
                    }
                }
            }
        }

        impl_node_any!();
    }

    /// Sends `count` packets at start.
    struct Burst {
        count: u32,
    }

    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let link = ctx.my_links()[0];
            for _ in 0..self.count {
                let id = ctx.next_packet_id();
                let h = Header::udp(Addr::new(1, 0, 0, 1), Addr::new(1, 0, 0, 2), 1, 2);
                ctx.send(link, Packet::data(id, h, TrafficClass::Legit, 100));
            }
        }

        fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

        impl_node_any!();
    }

    fn line_topology(n: usize) -> (Simulator, Vec<NodeId>) {
        let mut b = NetworkBuilder::new(3);
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        for w in ids.windows(2) {
            b.connect(
                w[0],
                w[1],
                LinkParams::infinite(SimDuration::from_millis(1)),
            );
        }
        (b.build(), ids)
    }

    #[test]
    fn packets_traverse_a_line() {
        let (mut sim, ids) = line_topology(4);
        sim.install(ids[0], Box::new(Burst { count: 5 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        sim.run_for(SimDuration::from_millis(100));
        // Every relay saw all 5 packets exactly once (line topology, no loops).
        for &id in &ids[1..] {
            assert_eq!(sim.node_ref::<FloodRelay>(id).unwrap().received, 5);
        }
    }

    #[test]
    fn clock_advances_to_run_target_even_when_idle() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime(5_000_000_000));
    }

    #[test]
    fn run_until_is_incremental() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 1 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.install(ids[2], Box::new(FloodRelay { received: 0 }));
        sim.run_until(SimTime(500_000));
        // Packet needs 1 ms to reach the first relay.
        assert_eq!(sim.node_ref::<FloodRelay>(ids[1]).unwrap().received, 0);
        sim.run_until(SimTime(1_500_000));
        assert_eq!(sim.node_ref::<FloodRelay>(ids[1]).unwrap().received, 1);
        assert_eq!(sim.node_ref::<FloodRelay>(ids[2]).unwrap().received, 0);
        sim.run_until(SimTime(2_500_000));
        assert_eq!(sim.node_ref::<FloodRelay>(ids[2]).unwrap().received, 1);
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn missing_node_is_a_build_error() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.install(ids[0], Box::new(Burst { count: 0 }));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, ids) = line_topology(5);
            sim.install(ids[0], Box::new(Burst { count: 50 }));
            for &id in &ids[1..] {
                sim.install(id, Box::new(FloodRelay { received: 0 }));
            }
            sim.run_for(SimDuration::from_secs(1));
            (
                sim.dispatched_events(),
                ids[1..]
                    .iter()
                    .map(|&id| sim.node_ref::<FloodRelay>(id).unwrap().received)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn throughput_telemetry_tracks_the_event_loop() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 10 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        assert_eq!(sim.events_per_sec(), 0.0, "no run yet");
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.dispatched_events() > 0);
        assert!(sim.run_wall_secs() > 0.0);
        assert!(sim.events_per_sec() > 0.0);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn subsystem_profile_accounts_every_dispatched_event() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 10 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        sim.run_for(SimDuration::from_secs(1));
        let p = sim.subsystem_profile();
        assert_eq!(p.total_events(), sim.dispatched_events());
        use aitf_trace::Subsystem;
        assert!(p.bucket(Subsystem::Link).events > 0, "tx completions");
        assert!(p.bucket(Subsystem::HostApp).events > 0, "node dispatches");
        let f = p.finalized();
        assert_eq!(f.bucket(Subsystem::Queue).events, p.total_events());
    }

    #[test]
    #[cfg(not(feature = "trace"))]
    fn subsystem_profile_is_empty_without_the_trace_feature() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 5 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.subsystem_profile().total_events(), 0);
    }

    #[test]
    fn quiescence_guard_trips_on_runaway() {
        struct Storm;

        impl Node for Storm {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }

            fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }

            impl_node_any!();
        }

        let mut b = NetworkBuilder::new(1);
        let a = b.add_node();
        let mut sim = b.build();
        sim.install(a, Box::new(Storm));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_to_quiescence(1_000);
        }));
        assert!(result.is_err());
    }

    /// Builds a chain-of-groups world: `n` single-node groups in a parent
    /// chain, 1 ms links, `Burst` at node 0, relays elsewhere. Returns the
    /// per-relay reception counts plus the dispatched-event total.
    fn chain_results(n: usize, shards: usize) -> (u64, Vec<u64>, usize) {
        let (mut sim, ids) = line_topology(n);
        sim.install(ids[0], Box::new(Burst { count: 20 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        if shards > 1 {
            let spec = PartitionSpec::new(
                (0..n).map(|i| vec![NodeId(i)]).collect(),
                (0..n).map(|i| i.checked_sub(1)).collect(),
            );
            let part = sim.apply_shards(shards, &spec).expect("partition");
            assert_eq!(part.shards, shards.min(n));
            if part.shards > 1 {
                assert_eq!(sim.lookahead(), Some(SimDuration::from_millis(1)));
            }
        }
        sim.run_for(SimDuration::from_secs(1));
        (
            sim.dispatched_events(),
            ids[1..]
                .iter()
                .map(|&id| sim.node_ref::<FloodRelay>(id).unwrap().received)
                .collect(),
            sim.shard_count(),
        )
    }

    #[test]
    fn sharded_run_matches_single_threaded() {
        let (ev1, rx1, k1) = chain_results(6, 1);
        assert_eq!(k1, 1);
        for shards in [2, 3, 4] {
            let (ev, rx, k) = chain_results(6, shards);
            assert_eq!(k, shards);
            assert_eq!(ev, ev1, "dispatched events drifted at {shards} shards");
            assert_eq!(rx, rx1, "reception counts drifted at {shards} shards");
        }
    }

    #[test]
    fn sharded_clock_and_telemetry_advance() {
        let (mut sim, ids) = line_topology(4);
        sim.install(ids[0], Box::new(Burst { count: 3 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        let spec = PartitionSpec::new(
            (0..4usize).map(|i| vec![NodeId(i)]).collect(),
            (0..4usize).map(|i| i.checked_sub(1)).collect(),
        );
        sim.apply_shards(2, &spec).expect("partition");
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(sim.now(), SimTime(2_000_000_000));
        assert!(sim.dispatched_events() > 0);
        assert!(sim.events_per_sec() > 0.0);
        assert_eq!(sim.shard_count(), 2);
    }

    #[test]
    fn apply_shards_with_k1_keeps_the_single_loop() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 1 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        let part = sim
            .apply_shards(1, &PartitionSpec::flat(3))
            .expect("identity partition");
        assert_eq!(part.shards, 1);
        assert_eq!(sim.shard_count(), 1);
        assert_eq!(sim.lookahead(), None);
        sim.run_for(SimDuration::from_millis(10));
        assert_eq!(sim.node_ref::<FloodRelay>(ids[1]).unwrap().received, 1);
    }

    #[test]
    fn cross_shard_blocking_converges_at_the_barrier() {
        // Two nodes in different shards; node 1 blocks its incoming side
        // of the cut link before the run. The block must reach node 0's
        // shard copy (the enqueue side) via the control handoff.
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 10 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.apply_shards(2, &PartitionSpec::flat(2))
            .expect("partition");
        assert_eq!(sim.shard_count(), 2);
        let link = sim.links_of(ids[0])[0];
        sim.with_node_ctx(ids[1], |_, ctx| ctx.set_incoming_blocked(link, true));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            sim.node_ref::<FloodRelay>(ids[1]).unwrap().received,
            0,
            "blocked direction must drop the burst"
        );
        let stats = sim.link_stats_towards(link, ids[1]);
        assert_eq!(stats.admin_drop_pkts, 10);
    }
}
