//! The simulator: builder, core state and the event loop.
//!
//! [`NetworkBuilder`] assembles nodes and links; [`Simulator`] owns them and
//! runs the event loop. Node objects are installed after building because
//! higher layers (the AITF protocol crate) need the topology — routing
//! tables, link lists — to construct them.

use rand::rngs::StdRng;
use rand::SeedableRng;

use aitf_packet::Packet;

use crate::event::{EventKind, EventQueue};
use crate::link::{Link, LinkDirection, LinkId, LinkParams, LinkStats};
use crate::metrics::Metrics;
use crate::node::{Context, Node, NodeId};
use crate::time::{SimDuration, SimTime};
use crate::topology::NextHops;

/// Everything in the simulator except the node objects themselves.
///
/// The split lets a node handler borrow the core mutably (through
/// [`Context`]) while the node itself is temporarily detached — the
/// standard way to give trait-object nodes access to the world without
/// interior mutability.
pub struct SimCore {
    pub(crate) time: SimTime,
    pub(crate) events: EventQueue,
    pub(crate) links: Vec<Link>,
    pub(crate) node_links: Vec<Vec<LinkId>>,
    pub(crate) metrics: Metrics,
    pub(crate) rng: StdRng,
    next_pkt_id: u64,
    dispatched_events: u64,
    /// Per-subsystem wall-time buckets (pure telemetry, like `run_wall`).
    #[cfg(feature = "trace")]
    pub(crate) profile: aitf_trace::SubsystemProfile,
    /// The subsystem the event currently being dispatched is attributed
    /// to; seeded from the event kind / node class, refined by handlers
    /// through [`Context::profile_subsystem`].
    #[cfg(feature = "trace")]
    pub(crate) dispatch_class: aitf_trace::Subsystem,
}

impl SimCore {
    /// Sends `packet` from `node` over `link`, returning link acceptance.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `link`.
    pub fn send_from(&mut self, node: NodeId, link: LinkId, packet: Packet) -> bool {
        let dir = self.links[link.0].dir_from(node);
        let now = self.time;
        self.links[link.0].enqueue(now, dir, packet, &mut self.events)
    }

    /// Arms a timer for `node`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.events
            .schedule(self.time + delay, EventKind::Timer { node, token });
    }

    /// Links attached to `node`, in creation order.
    pub fn links_of(&self, node: NodeId) -> &[LinkId] {
        &self.node_links[node.0]
    }

    /// Immutable link access.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Mutable link access.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// Draws a fresh globally unique packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        id
    }
}

/// Builds the static topology: nodes (as slots) and links.
///
/// # Examples
///
/// ```
/// use aitf_netsim::{LinkParams, NetworkBuilder, SimDuration};
///
/// let mut b = NetworkBuilder::new(7);
/// let n0 = b.add_node();
/// let n1 = b.add_node();
/// let l = b.connect(n0, n1, LinkParams::infinite(SimDuration::from_millis(1)));
/// let sim = b.build();
/// assert_eq!(sim.link_endpoints(l), (n0, n1));
/// ```
pub struct NetworkBuilder {
    node_count: usize,
    links: Vec<(NodeId, NodeId, LinkParams)>,
    seed: u64,
}

impl NetworkBuilder {
    /// Creates a builder; `seed` drives every random decision in the run.
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            node_count: 0,
            links: Vec::new(),
            seed,
        }
    }

    /// Reserves a node slot and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Number of node slots reserved so far.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Connects two nodes with a link.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or if `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        assert!(
            a.0 < self.node_count && b.0 < self.node_count,
            "unknown node"
        );
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len());
        self.links.push((a, b, params));
        id
    }

    /// Finalises the topology into a runnable [`Simulator`] with empty node
    /// slots; install nodes with [`Simulator::install`].
    pub fn build(self) -> Simulator {
        let mut node_links = vec![Vec::new(); self.node_count];
        let mut links = Vec::with_capacity(self.links.len());
        for (i, (a, b, params)) in self.links.into_iter().enumerate() {
            let id = LinkId(i);
            node_links[a.0].push(id);
            node_links[b.0].push(id);
            links.push(Link::new(id, a, b, params));
        }
        Simulator {
            core: SimCore {
                time: SimTime::ZERO,
                events: EventQueue::new(),
                links,
                node_links,
                metrics: Metrics::new(),
                rng: StdRng::seed_from_u64(self.seed),
                next_pkt_id: 0,
                dispatched_events: 0,
                #[cfg(feature = "trace")]
                profile: aitf_trace::SubsystemProfile::default(),
                #[cfg(feature = "trace")]
                dispatch_class: aitf_trace::Subsystem::Queue,
            },
            nodes: (0..self.node_count).map(|_| None).collect(),
            started: false,
            run_wall: std::time::Duration::ZERO,
        }
    }
}

/// The deterministic discrete-event simulator.
pub struct Simulator {
    core: SimCore,
    nodes: Vec<Option<Box<dyn Node>>>,
    started: bool,
    /// Wall-clock time spent inside the event loop — pure telemetry, never
    /// an input to the simulation (results stay bit-deterministic).
    run_wall: std::time::Duration,
}

impl Simulator {
    /// Installs the node object for slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied or out of range.
    pub fn install(&mut self, id: NodeId, node: Box<dyn Node>) {
        let slot = &mut self.nodes[id.0];
        assert!(slot.is_none(), "node {id:?} installed twice");
        *slot = Some(node);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.core.links.len()
    }

    /// The endpoints of `link`.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        self.core.links[link.0].endpoints()
    }

    /// Traffic statistics of one direction of `link`.
    pub fn link_stats(&self, link: LinkId, dir: LinkDirection) -> &LinkStats {
        self.core.links[link.0].stats(dir)
    }

    /// Statistics of the direction of `link` that carries traffic *into*
    /// `node`.
    pub fn link_stats_towards(&self, link: LinkId, node: NodeId) -> &LinkStats {
        let l = &self.core.links[link.0];
        l.stats(l.dir_from(l.peer_of(node)))
    }

    /// The links attached to `node`.
    pub fn links_of(&self, node: NodeId) -> &[LinkId] {
        self.core.links_of(node)
    }

    /// Read access to a link (queue depths, in-flight state, stats).
    pub fn link(&self, id: LinkId) -> &Link {
        self.core.link(id)
    }

    /// The metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Mutable metrics access (for experiment probes between runs).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Number of events dispatched so far (diagnostics / benches).
    pub fn dispatched_events(&self) -> u64 {
        self.core.dispatched_events
    }

    /// Returns `true` once [`Simulator::start`] has run (explicitly or via
    /// the first `run_*` call) — dynamic-world layers use this to decide
    /// between build-time installation and runtime activation.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Number of events currently pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.core.events.len()
    }

    /// The firing time of the earliest pending event, if any. Never less
    /// than [`Simulator::now`]: the event loop dispatches in time order, so
    /// a stale event would be a scheduling bug.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.core.events.peek_time()
    }

    /// Administratively blocks or unblocks one direction of `link` from
    /// *outside* the event loop — the runtime detach/attach hook dynamic
    /// worlds use to retire and revive endpoints mid-run. Identical in
    /// effect to a node calling [`Context::set_incoming_blocked`]; takes
    /// effect for every packet enqueued after the call.
    pub fn set_link_blocked(&mut self, link: LinkId, dir: LinkDirection, blocked: bool) {
        self.core.links[link.0].set_blocked(dir, blocked);
    }

    /// Returns `true` if the direction of `link` is administratively
    /// blocked.
    pub fn is_link_blocked(&self, link: LinkId, dir: LinkDirection) -> bool {
        self.core.links[link.0].is_blocked(dir)
    }

    /// Runs `f` with the node in slot `id` and a live [`Context`] —
    /// the runtime activation hook: higher layers use it between `run_*`
    /// segments to drive a node outside event dispatch (install a traffic
    /// app mid-run, restart a reattached host's apps). The mutation happens
    /// at the current virtual time, so determinism is preserved as long as
    /// callers invoke it at schedule-independent times.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never installed.
    pub fn with_node_ctx<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Context<'_>) -> R,
    ) -> R {
        let mut n = self.nodes[id.0].take().expect("installed node");
        let mut ctx = Context {
            node: id,
            core: &mut self.core,
        };
        let r = f(n.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(n);
        r
    }

    /// Wall-clock seconds spent inside the event loop so far.
    pub fn run_wall_secs(&self) -> f64 {
        self.run_wall.as_secs_f64()
    }

    /// The per-subsystem wall-time profile accumulated so far. Empty (all
    /// zeros) unless the crate is built with the `trace` feature — the
    /// default build carries no per-event instrumentation at all.
    pub fn subsystem_profile(&self) -> aitf_trace::SubsystemProfile {
        #[cfg(feature = "trace")]
        {
            self.core.profile
        }
        #[cfg(not(feature = "trace"))]
        {
            aitf_trace::SubsystemProfile::default()
        }
    }

    /// Events dispatched per wall-clock second of event-loop time — the
    /// simulator's end-to-end throughput telemetry (0 before any run).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.run_wall.as_secs_f64();
        if secs > 0.0 {
            self.core.dispatched_events as f64 / secs
        } else {
            0.0
        }
    }

    /// Downcasts the node in slot `id` to a concrete type.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0]
            .as_deref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of the node in slot `id`.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0]
            .as_deref_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    /// Computes shortest-path next hops between all node pairs, weighting
    /// each link by `weight` (use `|_| 1` for hop count).
    pub fn compute_next_hops(&self, weight: impl Fn(LinkId) -> u64) -> NextHops {
        let links: Vec<(NodeId, NodeId, LinkId, u64)> = self
            .core
            .links
            .iter()
            .map(|l| {
                let (a, b) = l.endpoints();
                (a, b, l.id(), weight(l.id()))
            })
            .collect();
        NextHops::compute(self.nodes.len(), &links)
    }

    /// Calls [`Node::on_start`] on every installed node, in id order.
    /// Runs automatically on the first `run_*` call if not done explicitly.
    ///
    /// # Panics
    ///
    /// Panics if any node slot was never installed.
    pub fn start(&mut self) {
        assert!(!self.started, "start() called twice");
        for i in 0..self.nodes.len() {
            assert!(self.nodes[i].is_some(), "node {i} was never installed");
            let mut node = self.nodes[i].take().expect("checked above");
            let mut ctx = Context {
                node: NodeId(i),
                core: &mut self.core,
            };
            node.on_start(&mut ctx);
            self.nodes[i] = Some(node);
        }
        self.started = true;
    }

    /// Runs the event loop until virtual time `t`; the clock ends exactly
    /// at `t` even if the queue drains early.
    pub fn run_until(&mut self, t: SimTime) {
        if !self.started {
            self.start();
        }
        let wall_start = std::time::Instant::now();
        while let Some(next) = self.core.events.peek_time() {
            if next > t {
                break;
            }
            let ev = self.core.events.pop().expect("peeked event exists");
            self.core.time = ev.time;
            self.core.dispatched_events += 1;
            #[cfg(feature = "trace")]
            let ev_start = std::time::Instant::now();
            match ev.kind {
                EventKind::Deliver { node, link, packet } => {
                    self.dispatch_packet(node, link, packet);
                }
                EventKind::LinkTxDone { link, dir } => {
                    #[cfg(feature = "trace")]
                    {
                        self.core.dispatch_class = aitf_trace::Subsystem::Link;
                    }
                    let now = self.core.time;
                    // Split borrow: the link mutates itself and schedules
                    // follow-up events; nodes are not involved.
                    let SimCore { links, events, .. } = &mut self.core;
                    links[link.0].on_tx_done(now, dir, events);
                }
                EventKind::Timer { node, token } => {
                    self.dispatch_timer(node, token);
                }
            }
            #[cfg(feature = "trace")]
            self.core.profile.record(
                self.core.dispatch_class,
                ev_start.elapsed().as_nanos() as u64,
            );
        }
        self.core.time = t;
        let elapsed = wall_start.elapsed();
        self.run_wall += elapsed;
        #[cfg(feature = "trace")]
        self.core.profile.add_loop_nanos(elapsed.as_nanos() as u64);
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.core.time + d;
        self.run_until(t);
    }

    /// Runs until the event queue is empty (only safe when no node re-arms
    /// timers forever), with a hard event-count bound as a loop guard.
    ///
    /// # Panics
    ///
    /// Panics if more than `max_events` fire, which indicates a runaway
    /// schedule.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        if !self.started {
            self.start();
        }
        let start_count = self.core.dispatched_events;
        while let Some(next) = self.core.events.peek_time() {
            assert!(
                self.core.dispatched_events - start_count < max_events,
                "exceeded {max_events} events without quiescing"
            );
            self.run_until(next);
        }
    }

    fn dispatch_packet(&mut self, node: NodeId, link: LinkId, packet: Packet) {
        let mut n = self.nodes[node.0].take().expect("installed node");
        #[cfg(feature = "trace")]
        {
            self.core.dispatch_class = n.subsystem();
        }
        let mut ctx = Context {
            node,
            core: &mut self.core,
        };
        n.on_packet(packet, link, &mut ctx);
        self.nodes[node.0] = Some(n);
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let mut n = self.nodes[node.0].take().expect("installed node");
        #[cfg(feature = "trace")]
        {
            self.core.dispatch_class = n.subsystem();
        }
        let mut ctx = Context {
            node,
            core: &mut self.core,
        };
        n.on_timer(token, &mut ctx);
        self.nodes[node.0] = Some(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_node_any;
    use aitf_packet::{Addr, Header, TrafficClass};

    /// Forwards every packet out of every other link; counts receptions.
    struct FloodRelay {
        received: u64,
    }

    impl Node for FloodRelay {
        fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
            self.received += 1;
            // Borrow-safe, allocation-free link iteration: index the slice
            // fresh each step instead of copying it to a Vec (the idiom
            // documented in ARCHITECTURE.md).
            for i in 0..ctx.my_links().len() {
                let l = ctx.my_links()[i];
                if l != link {
                    let mut p = packet.clone();
                    p.header.ttl = match p.header.ttl.checked_sub(1) {
                        Some(t) => t,
                        None => return,
                    };
                    if p.header.ttl > 0 {
                        ctx.send(l, p);
                    }
                }
            }
        }

        impl_node_any!();
    }

    /// Sends `count` packets at start.
    struct Burst {
        count: u32,
    }

    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let link = ctx.my_links()[0];
            for _ in 0..self.count {
                let id = ctx.next_packet_id();
                let h = Header::udp(Addr::new(1, 0, 0, 1), Addr::new(1, 0, 0, 2), 1, 2);
                ctx.send(link, Packet::data(id, h, TrafficClass::Legit, 100));
            }
        }

        fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

        impl_node_any!();
    }

    fn line_topology(n: usize) -> (Simulator, Vec<NodeId>) {
        let mut b = NetworkBuilder::new(3);
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        for w in ids.windows(2) {
            b.connect(
                w[0],
                w[1],
                LinkParams::infinite(SimDuration::from_millis(1)),
            );
        }
        (b.build(), ids)
    }

    #[test]
    fn packets_traverse_a_line() {
        let (mut sim, ids) = line_topology(4);
        sim.install(ids[0], Box::new(Burst { count: 5 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        sim.run_for(SimDuration::from_millis(100));
        // Every relay saw all 5 packets exactly once (line topology, no loops).
        for &id in &ids[1..] {
            assert_eq!(sim.node_ref::<FloodRelay>(id).unwrap().received, 5);
        }
    }

    #[test]
    fn clock_advances_to_run_target_even_when_idle() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime(5_000_000_000));
    }

    #[test]
    fn run_until_is_incremental() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 1 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.install(ids[2], Box::new(FloodRelay { received: 0 }));
        sim.run_until(SimTime(500_000));
        // Packet needs 1 ms to reach the first relay.
        assert_eq!(sim.node_ref::<FloodRelay>(ids[1]).unwrap().received, 0);
        sim.run_until(SimTime(1_500_000));
        assert_eq!(sim.node_ref::<FloodRelay>(ids[1]).unwrap().received, 1);
        assert_eq!(sim.node_ref::<FloodRelay>(ids[2]).unwrap().received, 0);
        sim.run_until(SimTime(2_500_000));
        assert_eq!(sim.node_ref::<FloodRelay>(ids[2]).unwrap().received, 1);
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn missing_node_is_a_build_error() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 0 }));
        sim.install(ids[0], Box::new(Burst { count: 0 }));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, ids) = line_topology(5);
            sim.install(ids[0], Box::new(Burst { count: 50 }));
            for &id in &ids[1..] {
                sim.install(id, Box::new(FloodRelay { received: 0 }));
            }
            sim.run_for(SimDuration::from_secs(1));
            (
                sim.dispatched_events(),
                ids[1..]
                    .iter()
                    .map(|&id| sim.node_ref::<FloodRelay>(id).unwrap().received)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn throughput_telemetry_tracks_the_event_loop() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 10 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        assert_eq!(sim.events_per_sec(), 0.0, "no run yet");
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.dispatched_events() > 0);
        assert!(sim.run_wall_secs() > 0.0);
        assert!(sim.events_per_sec() > 0.0);
    }

    #[test]
    #[cfg(feature = "trace")]
    fn subsystem_profile_accounts_every_dispatched_event() {
        let (mut sim, ids) = line_topology(3);
        sim.install(ids[0], Box::new(Burst { count: 10 }));
        for &id in &ids[1..] {
            sim.install(id, Box::new(FloodRelay { received: 0 }));
        }
        sim.run_for(SimDuration::from_secs(1));
        let p = sim.subsystem_profile();
        assert_eq!(p.total_events(), sim.dispatched_events());
        use aitf_trace::Subsystem;
        assert!(p.bucket(Subsystem::Link).events > 0, "tx completions");
        assert!(p.bucket(Subsystem::HostApp).events > 0, "node dispatches");
        let f = p.finalized();
        assert_eq!(f.bucket(Subsystem::Queue).events, p.total_events());
    }

    #[test]
    #[cfg(not(feature = "trace"))]
    fn subsystem_profile_is_empty_without_the_trace_feature() {
        let (mut sim, ids) = line_topology(2);
        sim.install(ids[0], Box::new(Burst { count: 5 }));
        sim.install(ids[1], Box::new(FloodRelay { received: 0 }));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.subsystem_profile().total_events(), 0);
    }

    #[test]
    fn quiescence_guard_trips_on_runaway() {
        struct Storm;

        impl Node for Storm {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }

            fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }

            impl_node_any!();
        }

        let mut b = NetworkBuilder::new(1);
        let a = b.add_node();
        let mut sim = b.build();
        sim.install(a, Box::new(Storm));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_to_quiescence(1_000);
        }));
        assert!(result.is_err());
    }
}
