//! A mixed legitimate/attack scenario in ~15 declarative lines.
//!
//! This is the `aitf-scenario` quickstart: declare a topology (a
//! two-level provider tree), a workload (a legit client pool plus a
//! zombie flood sharing one aggregate rate), and a probe set — then run
//! it and read the metrics. The E12 experiment sweeps exactly this shape.
//!
//! Run with `cargo run --release --example mixed_workload`.

use aitf_core::HostPolicy;
use aitf_netsim::SimDuration;
use aitf_scenario::{
    HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

fn main() {
    // Topology: hub → 3 providers → 9 leaf nets × 2 hosts + one victim.
    let mut topo = TopologySpec::tree(2, 3, 2, HostPolicy::Malicious, 10_000_000);
    // Declare the last 6 leaf hosts legitimate instead of zombie.
    let n = topo.hosts.len();
    for h in &mut topo.hosts[n - 6..] {
        h.policy = HostPolicy::Compliant;
        h.role = Role::Legit;
    }

    let outcome = Scenario::new(topo)
        .duration(SimDuration::from_secs(10))
        .traffic(TrafficSpec::legit(
            HostSel::Role(Role::Legit),
            TargetSel::Victim,
            100,
            1000,
        ))
        .traffic(
            TrafficSpec::flood_aggregate(
                HostSel::Role(Role::Attacker),
                TargetSel::Victim,
                6400,
                500,
            )
            .staggered(SimDuration::from_millis(10)),
        )
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .legit_delivery("legit_frac")
                .filters_installed_on("blocked_flows", Side::Attacker)
                .bin(SimDuration::from_millis(100))
                .sampled_filter_occupancy("_filters", "victim_net", false)
                .time_to_block("time_to_block_s", "_filters", 0.0),
        )
        .run(42);

    println!("=== mixed workload: 12 zombies + 6 legit clients, one victim ===\n");
    for (name, value) in outcome.metrics.entries() {
        println!("  {name:>16}  {value}");
    }
    println!("\n  simulator events: {}", outcome.events);
    println!(
        "\nAITF blocks all 12 zombie flows at their own providers within a \
         fraction of a second; the legitimate pool keeps the tail circuit."
    );
}
