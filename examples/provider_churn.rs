//! Partial deployment and provider churn in a few declarative lines.
//!
//! A two-level provider tree starts at *partial* AITF deployment — the
//! leaf providers of one subtree never deployed
//! ([`DeploymentSpec::legacy_nets`]) — and then the deployment itself
//! churns mid-attack: at `t = 3 s` a second subtree's leaves drop out of
//! AITF ([`ChurnAction::SetRouterPolicy`]), instantly re-opening their
//! zombies' already-blocked flows, and at `t = 6 s` they rejoin (their
//! dormant wire-speed filters resume matching on the spot).
//!
//! Because every policy flip is broadcast to the other routers'
//! deployment views, escalation never knocks on a legacy door: flows
//! from never-deployed leaves are blocked at their mid-tree provider in
//! round 1 (the leaf simply is not on the route record), and flows
//! re-opened by the mid-attack dropout are *re*-escalated around the
//! dropped-out leaf to the same mid-tree provider. The E16/E17
//! experiments sweep exactly these two axes.
//!
//! Run with `cargo run --release --example provider_churn`.

use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::{
    ChurnAction, DeploymentSpec, HostSel, NetSel, ProbeSet, Role, Scenario, TargetSel,
    TopologySpec, TrafficSpec,
};

fn main() {
    let flip = SimDuration::from_secs(3);
    let rejoin = SimDuration::from_secs(6);
    // ad_1's leaves (zombie_net_3..5) drop out at t = 3 s and rejoin at 6 s.
    let churners = NetSel::Names(vec![
        "zombie_net_3".into(),
        "zombie_net_4".into(),
        "zombie_net_5".into(),
    ]);

    let outcome = Scenario::new(TopologySpec::tree(
        2,
        3,
        2,
        HostPolicy::Malicious,
        10_000_000,
    ))
    .config(AitfConfig {
        grace: SimDuration::from_secs(3600),
        // The conservative detection model (see E17): with the shadow
        // fast paths on, a re-opened flow is re-blocked within a single
        // packet and the t=3s spike would be invisible on any plot.
        packet_triggered_reactivation: false,
        fast_redetect: false,
        ..AitfConfig::default()
    })
    // ad_2's leaves never deployed AITF in the first place.
    .deployment(DeploymentSpec::legacy_nets([
        "zombie_net_6",
        "zombie_net_7",
        "zombie_net_8",
    ]))
    .duration(SimDuration::from_secs(9))
    .traffic(TrafficSpec::flood(
        HostSel::Role(Role::Attacker),
        TargetSel::Victim,
        300,
        500,
    ))
    .event(
        flip,
        ChurnAction::SetRouterPolicy(churners.clone(), RouterPolicy::legacy()),
    )
    .event(
        rejoin,
        ChurnAction::SetRouterPolicy(churners, RouterPolicy::default()),
    )
    .probes(
        ProbeSet::new()
            .leak_ratio("leak_r")
            .end(|w, m| {
                let at = |name: &str| w.world.router(w.net(name)).counters().filters_installed;
                m.set(
                    "leaf_filters_ad0",
                    (0..3).map(|i| at(&format!("zombie_net_{i}"))).sum::<u64>(),
                );
                m.set("mid_filters_ad1", at("ad_1"));
                m.set("mid_filters_ad2", at("ad_2"));
                let mut ignored = 0u64;
                for i in 0..w.world.net_count() {
                    ignored += w
                        .world
                        .router(aitf_core::NetId(i))
                        .counters()
                        .requests_ignored;
                }
                // Only §II-D accountability notices land on legacy nets
                // (telling a dropped-out client to stop); escalations and
                // round-k requests never do.
                m.set("notices_ignored_by_legacy", ignored);
            })
            .bin(SimDuration::from_millis(250))
            .sampled_victim_mbps("_series_attack_mbps", true, |w| {
                w.world.host(w.victim()).counters().rx_attack_bytes
            }),
    )
    .run(42);

    println!("=== provider churn: one subtree never deployed, one flips out and back ===\n");
    for (name, value) in outcome.metrics.entries() {
        if !name.starts_with("_series") {
            println!("  {name:>26}  {value}");
        }
    }
    let t = outcome.metrics.f64_list("_series_time_s");
    let mbps = outcome.metrics.f64_list("_series_attack_mbps");
    println!("\n  attack bandwidth at the victim (Mbit/s):");
    for (t, v) in t.iter().zip(mbps) {
        println!(
            "    t={t:>5.2}s  {:<40} {v:.2}",
            "#".repeat((v * 3.0) as usize)
        );
    }
    println!(
        "\nThe never-deployed subtree is handled in round 1 by its mid-tree\n\
         provider (the legacy leaves are not on the route record). The flipped\n\
         subtree spikes at t=3s and is re-blocked one level up within a fraction\n\
         of a second — escalation skipped the dropped-out leaves because the\n\
         policy change was advertised to every router's deployment view."
    );
}
