//! A distributed attack: 64 zombies across 16 networks flood one web
//! server while a legitimate client keeps using it.
//!
//! Without AITF the 10 Mbit/s tail circuit drowns (legitimate goodput
//! collapses); with AITF every zombie flow is pushed back to its own
//! provider and the legitimate client recovers. Run with
//! `cargo run --example zombie_army`.

use aitf_attack::army::{arm_floods, offered_bits_per_sec, ZombieArmySpec};
use aitf_attack::LegitClient;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::star;

fn run(defended: bool) -> (f64, f64, u64) {
    let cfg = AitfConfig::default();
    let mut s = star(cfg, 7, 16, 4, HostPolicy::Malicious, 10_000_000);
    if !defended {
        // Legacy routers: no AITF anywhere. The world-level hook keeps
        // every router's deployment view in sync with the flip.
        let nets: Vec<_> = (0..s.world.net_count()).map(aitf_core::NetId).collect();
        for net in nets {
            s.world.set_router_policy(net, RouterPolicy::legacy());
        }
    }
    // One honest client in the last zombie network (collateral position).
    let client_net = *s.attacker_nets.last().expect("have nets");
    // The victim doubles as the web server; the client talks to it.
    let server = s.world.host_addr(s.victim);
    let client = {
        // Reuse a zombie slot? No — hosts are fixed at build; instead use
        // a dedicated zombie host as the legit client by giving it a
        // legit app and no flood.
        s.zombies.pop().expect("at least one zombie")
    };
    let _ = client_net;
    s.world
        .add_app(client, Box::new(LegitClient::new(server, 500, 1000)));
    s.world.host_mut(client).set_policy(HostPolicy::Compliant);

    let spec = ZombieArmySpec {
        pps: 250,
        size: 500,
        stagger: SimDuration::from_millis(50),
    };
    arm_floods(&mut s.world, &s.zombies.clone(), server, &spec);
    let offered = offered_bits_per_sec(s.zombies.len(), &spec);

    s.world.sim.run_for(SimDuration::from_secs(12));
    let v = s.world.host(s.victim).counters();
    let secs = 12.0;
    let goodput = v.rx_legit_bytes as f64 * 8.0 / secs;
    let attack_bw = v.rx_attack_bytes as f64 * 8.0 / secs;
    let mut disconnected = 0;
    for &net in &s.attacker_nets {
        disconnected += s.world.router(net).counters().disconnects_client;
    }
    println!(
        "  offered attack load: {:.1} Mbit/s across {} zombies",
        offered / 1e6,
        s.zombies.len()
    );
    (goodput, attack_bw, disconnected)
}

fn main() {
    println!("=== zombie army vs a 10 Mbit/s tail circuit ===\n");
    println!("without AITF (legacy routers):");
    let (goodput, attack_bw, _) = run(false);
    println!("  legitimate goodput: {:.3} Mbit/s", goodput / 1e6);
    println!(
        "  attack bandwidth delivered: {:.3} Mbit/s\n",
        attack_bw / 1e6
    );

    println!("with AITF:");
    let (goodput_d, attack_d, disconnected) = run(true);
    println!("  legitimate goodput: {:.3} Mbit/s", goodput_d / 1e6);
    println!("  attack bandwidth delivered: {:.3} Mbit/s", attack_d / 1e6);
    println!("  zombies disconnected by their own providers: {disconnected}");

    println!(
        "\nAITF recovered {:.1}x of the legitimate goodput and cut the \
         attack's effective bandwidth by {:.0}x.",
        goodput_d / goodput.max(1.0),
        attack_bw.max(1.0) / attack_d.max(1.0),
    );
}
