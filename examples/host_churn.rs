//! A dynamic world in a few declarative lines: host churn mid-attack.
//!
//! This is the `ChurnSpec` quickstart: a star of six zombie networks
//! where only the first three flood from the start; at `t = 4 s` that
//! wave retires ([`ChurnAction::Detach`]) and three fresh zombies —
//! declared up front but detached at `t = 0` — join and open fire
//! ([`ChurnAction::Attach`] + [`ChurnAction::StartTraffic`]). The victim
//! pays a fresh detection for every new flow, then AITF blocks the new
//! wave at its own providers exactly like the first: leak-ratio recovery
//! after churn. The E15 experiment sweeps exactly this shape over the
//! two-level provider tree.
//!
//! Run with `cargo run --release --example host_churn`.

use aitf_core::HostPolicy;
use aitf_netsim::SimDuration;
use aitf_scenario::{
    ChurnAction, HostSel, ProbeSet, Role, Scenario, Side, TargetSel, TopologySpec, TrafficSpec,
};

fn main() {
    let wave = SimDuration::from_secs(4);
    let first = HostSel::RoleSlice(Role::Attacker, 0, 3);
    let second = HostSel::RoleSlice(Role::Attacker, 3, 3);

    let outcome = Scenario::new(TopologySpec::star(6, 1, HostPolicy::Malicious, 10_000_000))
        .duration(wave * 2)
        // Wave 1 floods from the start.
        .traffic(TrafficSpec::flood(
            first.clone(),
            TargetSel::Victim,
            400,
            500,
        ))
        // Wave 2 exists but has not joined the network yet.
        .event(SimDuration::ZERO, ChurnAction::Detach(second.clone()))
        // At the boundary: wave 1 retires, wave 2 joins and opens fire.
        .event(wave, ChurnAction::Detach(first))
        .event(wave, ChurnAction::Attach(second.clone()))
        .event(
            wave,
            ChurnAction::StartTraffic(TrafficSpec::flood(second, TargetSel::Victim, 400, 500)),
        )
        .probes(
            ProbeSet::new()
                .leak_ratio("leak_r")
                .filters_installed_on("blocked_flows", Side::Attacker)
                .bin(SimDuration::from_millis(250))
                .sampled_victim_mbps("_series_attack_mbps", true, |w| {
                    w.world.host(w.victim()).counters().rx_attack_bytes
                }),
        )
        .run(42);

    println!("=== host churn: 3 zombies retire at t=4s, 3 fresh ones join ===\n");
    for (name, value) in outcome.metrics.entries() {
        if !name.starts_with("_series") {
            println!("  {name:>14}  {value}");
        }
    }
    let t = outcome.metrics.f64_list("_series_time_s");
    let mbps = outcome.metrics.f64_list("_series_attack_mbps");
    println!("\n  attack bandwidth at the victim (Mbit/s):");
    for (t, v) in t.iter().zip(mbps) {
        println!(
            "    t={t:>5.2}s  {:<40} {v:.2}",
            "#".repeat((v * 4.0) as usize)
        );
    }
    println!(
        "\nBoth spikes collapse within a fraction of a second: every churned-in\n\
         flow costs one fresh Td, then is blocked at its own provider — the\n\
         leak-ratio recovery E15 measures."
    );
}
