//! Quickstart: the paper's Figure 1 in thirty lines.
//!
//! `B_host` floods `G_host`; AITF detects, propagates a filtering request
//! to the attacker's gateway, verifies it with the 3-way handshake, and
//! blocks the flood at the network closest to the attacker — all within
//! a few hundred simulated milliseconds.
//!
//! Run with `cargo run --example quickstart`.

use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::fig1;

fn main() {
    // Paper defaults: T = 60 s, Ttmp = 1 s, R1 = 100/s, R2 = 1/s.
    let cfg = AitfConfig {
        trace: true,
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, 42, HostPolicy::Compliant);

    // A 4 Mbit/s UDP flood at the victim.
    let target = f.world.host_addr(f.victim);
    f.world
        .add_app(f.attacker, Box::new(FloodSource::new(target, 1000, 500)));

    f.world.sim.run_for(SimDuration::from_secs(5));

    println!("=== AITF quickstart: Figure 1, cooperative world ===\n");
    let v = f.world.host(f.victim).counters();
    println!("victim ({}):", f.world.host_addr(f.victim));
    println!("  attack packets that got through: {}", v.rx_attack_pkts);
    println!("  filtering requests sent:         {}", v.requests_sent);

    let g_gw1 = f.world.router(f.g_net);
    println!("\nvictim's gateway (G_gw1, {}):", g_gw1.addr());
    println!(
        "  packets dropped by temp filter:  {}",
        g_gw1.counters().data_filtered_pkts
    );
    println!(
        "  shadow entries logged:           {}",
        g_gw1.shadow().stats().inserts
    );

    let b_gw1 = f.world.router(f.b_net);
    println!("\nattacker's gateway (B_gw1, {}):", b_gw1.addr());
    println!(
        "  handshakes confirmed:            {}",
        b_gw1.counters().handshakes_confirmed
    );
    println!(
        "  long (T) filters installed:      {}",
        b_gw1.counters().filters_installed
    );
    println!(
        "  packets it blocked:              {}",
        b_gw1.counters().data_filtered_pkts
    );

    let a = f.world.host(f.attacker).counters();
    println!("\nattacker ({}):", f.world.host_addr(f.attacker));
    println!("  stop notices received:           {}", a.notices_received);
    println!("  flows stopped (compliant):       {}", a.flows_stopped);
    println!("  sends suppressed by self-filter: {}", a.tx_suppressed);

    println!("\ntimeline of the attacker's gateway:");
    for (t, line) in b_gw1.timeline() {
        println!("  {t}  {line}");
    }
    println!("\nThe flood was pushed back to the AITF node closest to the attacker.");
}
