//! A malicious node forges a filtering request against a legitimate flow —
//! and the 3-way handshake kills it.
//!
//! Section II-E: "compromised node M can maliciously request the blocking
//! of traffic from A to V". The attacker's gateway verifies every request
//! by asking the claimed victim (with a nonce only on-path nodes can see);
//! V never asked, so it denies, and the legitimate flow survives. The
//! example also re-runs the attack with verification disabled to show the
//! damage the handshake prevents.
//!
//! Run with `cargo run --example forged_request`.

use aitf_attack::{LegitClient, RequestForger};
use aitf_core::{AitfConfig, WorldBuilder};
use aitf_netsim::SimDuration;
use aitf_packet::FlowLabel;

fn run(verification: bool) {
    let cfg = AitfConfig {
        verification,
        ..AitfConfig::default()
    };
    let mut b = WorldBuilder::new(5, cfg);
    let wan = b.network("wan", "10.100.0.0/16", None);
    let a_net = b.network("a_net", "10.1.0.0/16", Some(wan));
    let v_net = b.network("v_net", "10.2.0.0/16", Some(wan));
    let m_net = b.network("m_net", "10.3.0.0/16", Some(wan));
    let a = b.host(a_net);
    let v = b.host(v_net);
    let m = b.host(m_net);
    let mut w = b.build();

    let a_addr = w.host_addr(a);
    let v_addr = w.host_addr(v);
    // A sends a steady legitimate stream to V.
    w.add_app(a, Box::new(LegitClient::new(v_addr, 200, 500)));
    // M (off-path) forges "V does not want A's traffic" at A's gateway.
    w.add_app(
        m,
        Box::new(RequestForger::new(
            w.router_addr(a_net),
            FlowLabel::src_dst(a_addr, v_addr),
            SimDuration::from_secs(1),
        )),
    );
    w.sim.run_for(SimDuration::from_secs(5));

    let gw = w.router(a_net).counters();
    let vc = w.host(v).counters();
    println!(
        "  handshake {}: queries denied by V: {}, filters installed: {}, \
         legit packets delivered: {} / ~1000",
        if verification { "ON " } else { "OFF" },
        gw.handshakes_denied,
        gw.filters_installed,
        vc.rx_legit_pkts,
    );
}

fn main() {
    println!("=== forged filtering request vs the 3-way handshake ===\n");
    println!("with verification (the AITF design):");
    run(true);
    println!("\nwithout verification (ablation — why Section II-E exists):");
    run(false);
    println!(
        "\nOff-path forgery cannot block a legitimate flow unless the \
         forger already routes it (Section III-B)."
    );
}
