//! The "on-off" evasion game and the shadow cache that ends it.
//!
//! Section II-B, footnote 2: an attacker whose gateway ignores filtering
//! requests can stop just long enough for the victim-gateway's temporary
//! filter (`Ttmp`) to expire, then resume. The gateway's DRAM shadow —
//! kept for the full `T` — recognises the flow on its first returning
//! packet, reinstalls the filter and escalates past the rogue gateway.
//!
//! Run with `cargo run --example onoff_evasion`.

use aitf_attack::OnOffSource;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;
use aitf_packet::FlowLabel;
use aitf_scenario::fig1;

fn main() {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(30),
        t_tmp: SimDuration::from_secs(1),
        trace: true,
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, 99, HostPolicy::Malicious);
    // The attacker's own gateway plays dumb — otherwise the first round
    // would end the game immediately.
    f.world
        .router_mut(f.b_net)
        .set_policy(RouterPolicy::non_cooperating());

    let target = f.world.host_addr(f.victim);
    // Bursts of 200 ms separated by 1.5 s of silence: tuned to outlive the
    // 1 s temporary filter.
    f.world.add_app(
        f.attacker,
        Box::new(OnOffSource::new(
            target,
            1000,
            500,
            SimDuration::from_millis(200),
            SimDuration::from_millis(1500),
        )),
    );
    f.world.sim.run_for(SimDuration::from_secs(20));

    println!("=== on-off evasion vs the DRAM shadow ===\n");
    let gw = f.world.router(f.g_net);
    let flow = FlowLabel::src_dst(f.world.host_addr(f.attacker), target);
    println!("victim's gateway (G_gw1):");
    println!(
        "  shadow reactivations (bursts caught): {}",
        gw.counters().reactivations
    );
    println!(
        "  escalation round reached:              {}",
        gw.shadow().get(&flow).map_or(0, |e| e.round)
    );
    println!(
        "  escalations sent:                      {}",
        gw.counters().escalations_sent
    );

    let b_gw2 = f.world.router(f.b_isp);
    println!("\nB_isp (the rogue gateway's provider):");
    println!(
        "  long filters installed:                {}",
        b_gw2.counters().filters_installed
    );
    println!(
        "  clients disconnected:                  {}",
        b_gw2.counters().disconnects_client
    );

    let v = f.world.host(f.victim).counters();
    let a = f.world.host(f.attacker).counters();
    println!("\nscoreboard:");
    println!("  attacker sent:    {} packets", a.tx_pkts);
    println!("  victim received:  {} packets", v.rx_attack_pkts);
    println!(
        "  effective bandwidth of the undesired flow: {:.4}%",
        100.0 * v.rx_attack_bytes as f64 / (a.tx_bytes.max(1)) as f64
    );
    println!("\ngateway timeline (first 12 entries):");
    for (t, line) in gw.timeline().iter().take(12) {
        println!("  {t}  {line}");
    }
}
