//! Walkthrough of Section II-D: what happens when gateways refuse.
//!
//! Runs the Figure 1 scenario four times with 0–3 non-cooperating
//! attacker-side gateways and narrates where the filtering ends up each
//! time — from "blocked at the attacker's gateway" to the worst case
//! where `G_gw3` disconnects from `B_gw3` entirely.
//!
//! Run with `cargo run --example escalation_walkthrough`.

use aitf_attack::FloodSource;
use aitf_core::{AitfConfig, HostPolicy, RouterPolicy};
use aitf_netsim::SimDuration;
use aitf_scenario::fig1;

fn main() {
    println!("=== escalation walkthrough (Fig. 1, Section II-D) ===");
    for rogues in 0..=3 {
        let cfg = AitfConfig {
            trace: true,
            ..AitfConfig::default()
        };
        let mut f = fig1(cfg, 1000 + rogues, HostPolicy::Malicious);
        let b_side = [f.b_net, f.b_isp, f.b_wan];
        for &net in b_side.iter().take(rogues as usize) {
            f.world
                .router_mut(net)
                .set_policy(RouterPolicy::non_cooperating());
        }
        let target = f.world.host_addr(f.victim);
        f.world
            .add_app(f.attacker, Box::new(FloodSource::new(target, 1000, 500)));
        f.world.sim.run_for(SimDuration::from_secs(15));

        println!("\n--- {rogues} non-cooperating attacker-side gateway(s) ---");
        for (name, net) in [("B_gw1", f.b_net), ("B_gw2", f.b_isp), ("B_gw3", f.b_wan)] {
            let c = f.world.router(net).counters();
            let role = if c.filters_installed > 0 {
                format!(
                    "BLOCKED the flow (filters: {}, disconnects: {})",
                    c.filters_installed, c.disconnects_client
                )
            } else if c.requests_ignored > 0 {
                format!("ignored {} request(s)", c.requests_ignored)
            } else {
                "not involved".to_string()
            };
            println!("  {name}: {role}");
        }
        let g3 = f.world.router(f.g_wan).counters();
        if g3.disconnects_peer > 0 {
            println!("  G_gw3: DISCONNECTED the peering to B_gw3 (worst case)");
        }
        let v = f.world.host(f.victim).counters();
        println!(
            "  victim: {} attack packets leaked of {} sent",
            v.rx_attack_pkts,
            f.world.host(f.attacker).counters().tx_pkts
        );
        println!("  G_gw1 timeline:");
        for (t, line) in f.world.router(f.g_net).timeline().iter().take(6) {
            println!("    {t}  {line}");
        }
    }
    println!(
        "\nEach extra rogue gateway costs one escalation round; the flood \
         is always cut, and the rogue side pays with connectivity."
    );
}
