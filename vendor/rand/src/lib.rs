//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation with the same API shape:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a documented,
//! reproducible generator. It does NOT produce the same streams as the real
//! `rand::rngs::StdRng` (ChaCha12); everything in this workspace only
//! depends on *determinism per seed*, never on a specific stream.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate, folded into one trait).
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply bounded sampling (Lemire); the slight
                // modulo bias over a 64-bit word is immaterial here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + off
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| r.gen()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
