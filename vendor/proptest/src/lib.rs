//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, deterministic property-testing harness with the same
//! API shape: the [`Strategy`] trait (`prop_map`, `prop_flat_map`),
//! `any::<T>()`, range and tuple strategies, `collection::vec`,
//! `option::of`, [`Just`], and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! - cases are generated from a **fixed seed**, so every run explores the
//!   same inputs (reproducibility over novelty);
//! - there is **no shrinking** — a failing case prints its inputs via the
//!   assertion message and panics;
//! - `prop_assert!` panics instead of returning `Err`, which is equivalent
//!   for test outcomes.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of cases each `proptest!` test runs (override with
/// `PROPTEST_CASES`).
pub fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The RNG handed to strategies; a thin wrapper so the external `rand`
/// surface is not part of this crate's API.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-case RNG.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0xA17F_0000_0000_0000 ^ case))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn gen_usize(&mut self, lo: usize, hi_exclusive: usize) -> usize {
        if lo + 1 >= hi_exclusive {
            return lo;
        }
        self.0.gen_range(lo..hi_exclusive)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second-stage strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    /// The alternatives to choose among.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let i = rng.gen_usize(0, self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Marker strategy produced by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
    )*};
}

impl_arbitrary! {
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    bool => |r| r.next_u64() & 1 == 1,
}

/// The canonical strategy for `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.size.lo, self.size.hi_inclusive + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy generating `None` ~25% of the time (as the real crate).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_usize(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of` — an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, TestRng,
    };
}

/// Runs `#[test]` functions over generated inputs.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cases = $crate::default_cases();
                for __case in 0..cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0u32..100, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 100 });
        let a: Vec<u32> = (0..10)
            .map(|i| s.generate(&mut TestRng::for_case(i)))
            .collect();
        let b: Vec<u32> = (0..10)
            .map(|i| s.generate(&mut TestRng::for_case(i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u8..10, y in 0u64..=3, f in 0.5..2.5) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_option_and_flat_map(
            o in crate::option::of(any::<u16>()),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            (n, v) in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(any::<u8>(), n))
            }),
        ) {
            if let Some(x) = o { let _ = x; }
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips(a in any::<u8>()) {
            prop_assume!(a.is_multiple_of(2));
            prop_assert_eq!(a % 2, 0);
        }
    }
}
