//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness with the same API shape:
//! [`Criterion`], benchmark groups, `bench_function` / `bench_with_input`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a warm-up phase, then `sample_size`
//! timed samples whose iteration count is chosen so each sample lasts
//! roughly `measurement_time / sample_size`; the mean and min per-iteration
//! times are printed. No statistics beyond that — the numbers are for
//! trend-watching, not for publication.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// `(mean_ns, min_ns, iters)` after `iter` returns.
    result: Option<(f64, f64, u64)>,
}

impl Bencher {
    /// Times `f`, first warming up, then sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to calibrate the per-sample batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget = self.measurement.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((sample_budget / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64;
            total_ns += ns;
            total_iters += batch;
            min_ns = min_ns.min(ns / batch as f64);
        }
        self.result = Some((total_ns / total_iters.max(1) as f64, min_ns, total_iters));
    }
}

/// Top-level benchmark configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn run_one(&self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min, iters)) => {
                println!(
                    "{name:<50} mean {:>12} min {:>12} ({iters} iters)",
                    fmt_ns(mean),
                    fmt_ns(min)
                );
            }
            None => println!("{name:<50} (no measurement)"),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run_one(&id.name, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, f);
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_produces_a_measurement() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_inputs_work() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        for &n in &[1u64, 8] {
            g.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        g.bench_function("plain", |b| b.iter(|| black_box(0)));
        g.finish();
    }
}
