//! Runs every experiment in quick mode and checks each produced a table —
//! the experiments' own modules assert the substantive claims; this test
//! guarantees the published binaries never bit-rot.

#[test]
fn all_experiments_run_quick() {
    assert!(!aitf_bench::e1_escalation::run(true).is_empty());
    assert!(!aitf_bench::e3_protection_capacity::run(true).is_empty());
    assert!(!aitf_bench::e5_attacker_gw_resources::run(true).is_empty());
    assert!(!aitf_bench::e6_handshake_security::run(true).is_empty());
    assert!(!aitf_bench::e7_onoff_attacks::run(true).is_empty());
    assert!(!aitf_bench::e9_ingress_incentive::run(true).is_empty());
    assert!(!aitf_bench::e12_mixed_workload::run(true).is_empty());
    assert!(!aitf_bench::e14_td_tr_grid::run(true).is_empty());
    assert!(!aitf_bench::e15_host_churn::run(true).is_empty());
    assert!(!aitf_bench::e16_deployment_incentive::run(true).is_empty());
    assert!(!aitf_bench::e17_provider_churn::run(true).is_empty());
}

#[test]
fn figures_spec_emits_series_metrics() {
    use aitf_engine::Runner;

    let spec = aitf_bench::figures::spec(true);
    let records = Runner::new(2).quick(true).run(&spec);
    assert_eq!(records.len(), 2, "defended + undefended");
    for r in &records {
        assert!(r.events > 0, "figures runs must report simulator events");
        let series = r.metrics.f64_list("_series_goodput_mbps");
        assert!(!series.is_empty());
        assert_eq!(series.len(), r.metrics.f64_list("_series_time_s").len());
        // Series are JSON-only: the table keeps the summary columns.
        assert!(r.to_json().contains("\"_series_goodput_mbps\":["));
    }
    // Paired seeds: the defended/undefended rows differ only in the knob.
    assert_eq!(records[0].seed, records[1].seed);
}

#[test]
fn heavy_experiments_run_quick() {
    // Split out so the two long sweeps can run in parallel with the rest.
    assert!(!aitf_bench::e2_effective_bandwidth::run(true).is_empty());
    assert!(!aitf_bench::e4_victim_gw_resources::run(true).is_empty());
    assert!(!aitf_bench::e8_vs_pushback::run(true).is_empty());
    assert!(!aitf_bench::e10_scaling::run(true).is_empty());
    assert!(!aitf_bench::e13_filter_pressure::run(true).is_empty());
}
