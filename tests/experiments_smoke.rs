//! Runs every experiment in quick mode and checks each produced a table —
//! the experiments' own modules assert the substantive claims; this test
//! guarantees the published binaries never bit-rot.

#[test]
fn all_experiments_run_quick() {
    assert!(!aitf_bench::e1_escalation::run(true).is_empty());
    assert!(!aitf_bench::e3_protection_capacity::run(true).is_empty());
    assert!(!aitf_bench::e5_attacker_gw_resources::run(true).is_empty());
    assert!(!aitf_bench::e6_handshake_security::run(true).is_empty());
    assert!(!aitf_bench::e7_onoff_attacks::run(true).is_empty());
    assert!(!aitf_bench::e9_ingress_incentive::run(true).is_empty());
}

#[test]
fn heavy_experiments_run_quick() {
    // Split out so the two long sweeps can run in parallel with the rest.
    assert!(!aitf_bench::e2_effective_bandwidth::run(true).is_empty());
    assert!(!aitf_bench::e4_victim_gw_resources::run(true).is_empty());
    assert!(!aitf_bench::e8_vs_pushback::run(true).is_empty());
    assert!(!aitf_bench::e10_scaling::run(true).is_empty());
}
