//! Wire-codec integration: capture live control traffic from a protocol
//! run and prove every message survives an encode/decode round trip.
//!
//! A tap node sits between the two Figure-1 WANs and records every packet
//! it forwards; each one is then pushed through `aitf_packet::wire` and
//! compared field by field.

use aitf::netsim::{impl_node_any, Context, LinkId, LinkParams, NetworkBuilder, Node, SimDuration};
use aitf::packet::{wire, Addr, Header, Packet, PayloadKind, TrafficClass};

/// Forwards everything from one link to the other and keeps a copy.
struct Tap {
    captured: Vec<Packet>,
}

impl Node for Tap {
    fn on_packet(&mut self, packet: Packet, link: LinkId, ctx: &mut Context<'_>) {
        self.captured.push(packet.clone());
        // Borrow-safe link iteration without the Vec copy (ARCHITECTURE.md).
        for i in 0..ctx.my_links().len() {
            let l = ctx.my_links()[i];
            if l != link {
                ctx.send(l, packet.clone());
            }
        }
    }

    impl_node_any!();
}

/// A source spraying a mix of packet shapes.
struct Sprayer;

impl Node for Sprayer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }

    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        use aitf::packet::{
            AitfMessage, FilteringRequest, FlowLabel, Nonce, RequestDestination, RouteRecord,
            VerificationQuery,
        };
        let src = Addr::new(10, 1, 0, 1);
        let dst = Addr::new(10, 2, 0, 1);
        let link = ctx.my_links()[0];
        // Data packet with a route record.
        let mut data = Packet::data(
            ctx.next_packet_id(),
            Header::udp(src, dst, 1000, 80),
            TrafficClass::Attack,
            700,
        );
        data.route_record = RouteRecord::from_hops([Addr::new(10, 1, 0, 254)]);
        ctx.send(link, data);
        // Filtering request.
        let req = FilteringRequest::new(
            FlowLabel::src_dst(src, dst),
            RequestDestination::AttackerGateway,
            60_000_000_000,
        )
        .with_id(9)
        .with_round(2);
        let id = ctx.next_packet_id();
        ctx.send(
            link,
            Packet::control(id, src, dst, AitfMessage::FilteringRequest(req)),
        );
        // Verification query.
        let q = VerificationQuery {
            request_id: 9,
            flow: FlowLabel::src_dst(src, dst),
            nonce: Nonce(0xABCD),
        };
        let id = ctx.next_packet_id();
        ctx.send(
            link,
            Packet::control(id, src, dst, AitfMessage::VerificationQuery(q)),
        );
        ctx.set_timer(SimDuration::from_millis(10), 0);
    }

    impl_node_any!();
}

struct Sink;

impl Node for Sink {
    fn on_packet(&mut self, _p: Packet, _l: LinkId, _ctx: &mut Context<'_>) {}
    impl_node_any!();
}

#[test]
fn captured_traffic_roundtrips_through_the_wire_codec() {
    let mut b = NetworkBuilder::new(11);
    let src = b.add_node();
    let tap = b.add_node();
    let dst = b.add_node();
    b.connect(src, tap, LinkParams::infinite(SimDuration::from_millis(1)));
    b.connect(tap, dst, LinkParams::infinite(SimDuration::from_millis(1)));
    let mut sim = b.build();
    sim.install(src, Box::new(Sprayer));
    sim.install(
        tap,
        Box::new(Tap {
            captured: Vec::new(),
        }),
    );
    sim.install(dst, Box::new(Sink));
    sim.run_for(SimDuration::from_secs(1));

    let tap_node = sim.node_ref::<Tap>(tap).expect("tap node");
    assert!(
        tap_node.captured.len() >= 300,
        "tap saw {} packets",
        tap_node.captured.len()
    );
    for pkt in &tap_node.captured {
        let bytes = wire::encode(pkt);
        let decoded = wire::decode(&bytes).expect("live packet must decode");
        assert_eq!(&decoded, pkt);
        // Control messages must be the dominated size class they claim.
        if matches!(pkt.payload, PayloadKind::Aitf(_)) {
            assert!(bytes.len() <= pkt.size_bytes as usize + 64);
        }
    }
}
