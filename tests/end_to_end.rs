//! Cross-crate integration: the full stack (packet → netsim → filter →
//! traceback → core → attack) driven through the umbrella crate.

use aitf::attack::army::{arm_floods, ZombieArmySpec};
use aitf::attack::{FloodSource, LegitClient, OnOffSource};
use aitf::core::{AitfConfig, HostPolicy, RouterPolicy, TracebackMode};
use aitf::netsim::SimDuration;
use aitf::scenario::{chain_pair, fig1, star};

#[test]
fn cooperative_world_bounds_the_leak_by_detection_time() {
    // The victim may see attack traffic only during Td + Tr + handshake;
    // afterwards nothing.
    let cfg = AitfConfig::default();
    let td = cfg.detection_delay;
    let mut f = fig1(cfg, 1, HostPolicy::Compliant);
    let target = f.world.host_addr(f.victim);
    f.world
        .add_app(f.attacker, Box::new(FloodSource::new(target, 2000, 400)));
    f.world.sim.run_for(SimDuration::from_secs(8));
    let v = f.world.host(f.victim).counters();
    // Upper bound: 2000 pps * (Td + 100 ms of propagation slack).
    let bound = 2000.0 * (td.as_secs_f64() + 0.1);
    assert!(
        (v.rx_attack_pkts as f64) < bound,
        "leak {} exceeds detection-window bound {}",
        v.rx_attack_pkts,
        bound
    );
}

#[test]
fn legit_traffic_is_never_collateral_damage() {
    // An attack against the victim must not cut an unrelated legit flow to
    // the same victim.
    let cfg = AitfConfig::default();
    let mut s = star(cfg, 2, 4, 1, HostPolicy::Malicious, 50_000_000);
    let target = s.world.host_addr(s.victim);
    // One zombie becomes an honest client instead.
    let client = s.zombies.pop().expect("zombie");
    s.world.host_mut(client).set_policy(HostPolicy::Compliant);
    s.world
        .add_app(client, Box::new(LegitClient::new(target, 100, 500)));
    let spec = ZombieArmySpec {
        pps: 400,
        size: 500,
        stagger: SimDuration::ZERO,
    };
    arm_floods(&mut s.world, &s.zombies.clone(), target, &spec);
    s.world.sim.run_for(SimDuration::from_secs(10));
    let v = s.world.host(s.victim).counters();
    // ~1000 legit packets offered; virtually all must arrive once the
    // attack is quenched (allow the congested start).
    assert!(
        v.rx_legit_pkts > 800,
        "legit flow was harmed: {} packets",
        v.rx_legit_pkts
    );
}

#[test]
fn sampling_traceback_reaches_the_same_outcome_slower() {
    let mk = |mode| {
        let cfg = AitfConfig {
            traceback: mode,
            detection_delay: SimDuration::from_millis(10),
            ..AitfConfig::default()
        };
        let mut f = fig1(cfg, 3, HostPolicy::Compliant);
        let target = f.world.host_addr(f.victim);
        f.world
            .add_app(f.attacker, Box::new(FloodSource::new(target, 2000, 400)));
        f.world.sim.run_for(SimDuration::from_secs(10));
        let blocked = f.world.router(f.b_net).counters().filters_installed;
        let leaked = f.world.host(f.victim).counters().rx_attack_pkts;
        (blocked, leaked)
    };
    let (rr_blocked, rr_leaked) = mk(TracebackMode::RouteRecord);
    let (s_blocked, s_leaked) = mk(TracebackMode::Sampling {
        p: 0.04,
        min_samples: 3,
    });
    // Same protocol outcome...
    assert_eq!(rr_blocked, 1);
    assert_eq!(s_blocked, 1, "sampling mode must still block at B_gw1");
    // ...but sampling needs many marked packets before the path converges.
    assert!(
        s_leaked > 2 * rr_leaked,
        "sampling identification latency should show: rr = {rr_leaked}, sampling = {s_leaked}"
    );
}

#[test]
fn deep_chains_still_converge() {
    for depth in [2usize, 4, 6] {
        let mut c = chain_pair(
            AitfConfig::default(),
            depth as u64,
            depth,
            HostPolicy::Malicious,
        );
        let target = c.world.host_addr(c.victim);
        c.world
            .add_app(c.attacker, Box::new(FloodSource::new(target, 1000, 500)));
        c.world.sim.run_for(SimDuration::from_secs(8));
        let blocked = c.world.router(c.b_chain[0]).counters().filters_installed;
        assert_eq!(blocked, 1, "depth {depth}: attacker's gateway must block");
        let before = c.world.host(c.victim).counters().rx_attack_pkts;
        c.world.sim.run_for(SimDuration::from_secs(2));
        let after = c.world.host(c.victim).counters().rx_attack_pkts;
        assert_eq!(before, after, "depth {depth}: flood must stay quenched");
    }
}

#[test]
fn onoff_attacker_is_caught_even_with_rogue_gateway() {
    let cfg = AitfConfig {
        t_long: SimDuration::from_secs(20),
        ..AitfConfig::default()
    };
    let mut f = fig1(cfg, 5, HostPolicy::Malicious);
    f.world
        .router_mut(f.b_net)
        .set_policy(RouterPolicy::non_cooperating());
    let target = f.world.host_addr(f.victim);
    f.world.add_app(
        f.attacker,
        Box::new(OnOffSource::new(
            target,
            1000,
            400,
            SimDuration::from_millis(150),
            SimDuration::from_millis(1400),
        )),
    );
    f.world.sim.run_for(SimDuration::from_secs(20));
    let gw = f.world.router(f.g_net).counters();
    assert!(gw.reactivations > 0, "shadow must catch the on-off bursts");
    // The escalation found a cooperating gateway upstream of the rogue.
    assert!(
        f.world.router(f.b_isp).counters().filters_installed > 0,
        "B_isp must end up holding the long filter"
    );
}

#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        let mut s = star(
            AitfConfig::default(),
            seed,
            6,
            2,
            HostPolicy::Malicious,
            10_000_000,
        );
        let target = s.world.host_addr(s.victim);
        let spec = ZombieArmySpec {
            pps: 300,
            size: 500,
            stagger: SimDuration::from_millis(100),
        };
        arm_floods(&mut s.world, &s.zombies.clone(), target, &spec);
        s.world.sim.run_for(SimDuration::from_secs(6));
        let v = s.world.host(s.victim).counters();
        (
            v.rx_attack_pkts,
            v.rx_attack_bytes,
            v.rx_legit_pkts,
            v.requests_sent,
            s.world.sim.dispatched_events(),
        )
    };
    assert_eq!(run(424242), run(424242), "same seed must be bit-identical");
}

#[test]
fn filter_tables_never_exceed_capacity_anywhere() {
    // Slam a world with far more flows than any table can hold and verify
    // every router's occupancy bound held.
    let cfg = AitfConfig {
        filter_capacity: 32,
        t_long: SimDuration::from_secs(10),
        detection_delay: SimDuration::from_millis(5),
        ..AitfConfig::default()
    };
    let mut s = star(cfg, 9, 10, 8, HostPolicy::Malicious, 10_000_000);
    let target = s.world.host_addr(s.victim);
    let spec = ZombieArmySpec {
        pps: 100,
        size: 300,
        stagger: SimDuration::ZERO,
    };
    arm_floods(&mut s.world, &s.zombies.clone(), target, &spec);
    s.world.sim.run_for(SimDuration::from_secs(8));
    for i in 0..s.world.net_count() {
        let r = s.world.router(aitf::core::NetId(i));
        assert!(
            r.filters().stats().peak_occupancy <= 32,
            "router {i} exceeded its filter capacity: {}",
            r.filters().stats().peak_occupancy
        );
    }
}
