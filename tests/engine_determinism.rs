//! Engine determinism over real experiments: the same spec, the same base
//! seed, 1 worker vs 8 workers — every `RunRecord` must be identical
//! (seeds, params, metrics, event counts; wall time is the only field
//! allowed to differ).

use aitf_engine::Runner;

fn assert_thread_invariant(spec: aitf_engine::ScenarioSpec) {
    let one = Runner::new(1).quick(true).run(&spec);
    let eight = Runner::new(8).quick(true).run(&spec);
    assert_eq!(one.len(), eight.len(), "{}: record count differs", spec.id);
    assert!(!one.is_empty(), "{}: spec produced no records", spec.id);
    for (a, b) in one.iter().zip(&eight) {
        assert!(
            a.deterministic_eq(b),
            "{}: records diverged across thread counts:\n  1 thread: {a:?}\n  8 threads: {b:?}",
            spec.id
        );
    }
}

#[test]
fn e11_detection_is_thread_count_invariant() {
    assert_thread_invariant(aitf_bench::e11_detection::spec(true));
}

#[test]
fn e6_handshake_is_thread_count_invariant() {
    assert_thread_invariant(aitf_bench::e6_handshake_security::spec(true));
}

#[test]
fn e12_mixed_workload_is_thread_count_invariant() {
    // The declarative-API-native experiment: sampled probes, aggregate
    // rate splits and tree topologies must all stay schedule-independent.
    assert_thread_invariant(aitf_bench::e12_mixed_workload::spec(true));
}

#[test]
fn e13_filter_pressure_is_thread_count_invariant() {
    // Capacity/eviction sweeps: full-table retry dynamics must be a pure
    // function of the derived seed, never of worker scheduling.
    assert_thread_invariant(aitf_bench::e13_filter_pressure::spec(true));
}

#[test]
fn e14_td_tr_grid_is_thread_count_invariant() {
    // The Td/Tr first-class axes rebuild config and topology per point;
    // the grid must stay bit-identical at any thread count.
    assert_thread_invariant(aitf_bench::e14_td_tr_grid::spec(true));
}

#[test]
fn e15_host_churn_is_thread_count_invariant() {
    // The dynamic-world experiment: churn events fire at fixed virtual
    // times between event-loop segments, so attach/detach/activate must
    // not introduce any schedule dependence.
    assert_thread_invariant(aitf_bench::e15_host_churn::spec(true));
}

#[test]
fn e16_deployment_incentive_is_thread_count_invariant() {
    // Partial deployment: the seed-derived nested assignment and the
    // deployment-aware escalation paths must be pure functions of the
    // derived seed at any worker count.
    assert_thread_invariant(aitf_bench::e16_deployment_incentive::spec(true));
}

#[test]
fn e17_provider_churn_is_thread_count_invariant() {
    // Network churn: SetRouterPolicy events broadcast deployment-view
    // updates between event-loop segments; re-escalation must stay
    // schedule-independent.
    assert_thread_invariant(aitf_bench::e17_provider_churn::spec(true));
}

#[test]
fn base_seed_flows_into_every_record() {
    let spec = aitf_bench::e11_detection::spec(true);
    let a = Runner::new(2).quick(true).base_seed(1).run(&spec);
    let b = Runner::new(2).quick(true).base_seed(2).run(&spec);
    assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
}
