//! # aitf — Active Internet Traffic Filtering, reproduced in Rust
//!
//! Umbrella crate for the reproduction of Argyraki & Cheriton's *Active
//! Internet Traffic Filtering: Real-time Response to Denial-of-Service
//! Attacks*. It re-exports the workspace crates so applications can depend
//! on one name:
//!
//! - [`core`] (`aitf-core`) — the AITF protocol: border routers, end
//!   hosts, contracts, the 3-way handshake and escalation.
//! - [`netsim`] (`aitf-netsim`) — the deterministic discrete-event network
//!   simulator the protocol runs on.
//! - [`packet`] (`aitf-packet`) — addresses, flow labels, messages and the
//!   route-record shim.
//! - [`filter`] (`aitf-filter`) — bounded filter tables, the DRAM shadow
//!   cache and contract rate limiters.
//! - [`traceback`] (`aitf-traceback`) — route-record and sampling
//!   traceback providers.
//! - [`defense`] (`aitf-defense`) — the hook-chain pipeline and the
//!   `DefensePolicy` axis (AITF, pushback, rate-limiting, path stamps).
//! - [`attack`] (`aitf-attack`) — attack and legitimate traffic sources.
//! - [`scenario`] (`aitf-scenario`) — the declarative scenario API:
//!   topology × workload × probes, plus the canned worlds (Figure 1,
//!   stars, chains, provider trees).
//!
//! See `examples/quickstart.rs` for a complete end-to-end run and the
//! `aitf-bench` crate for the experiment suite that regenerates the
//! paper's evaluation.

pub use aitf_attack as attack;
pub use aitf_core as core;
pub use aitf_defense as defense;
pub use aitf_filter as filter;
pub use aitf_netsim as netsim;
pub use aitf_packet as packet;
pub use aitf_scenario as scenario;
pub use aitf_traceback as traceback;
